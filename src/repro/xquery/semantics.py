"""In-memory reference semantics for XQuery⁻.

This evaluator implements the standard (non-streaming) semantics of the
fragment over a fully materialised :class:`~repro.xmlstream.tree.XMLNode`
document.  It serves three purposes:

* it is the *reference* against which the streaming FluX engine is tested for
  equivalence (Proposition 3.2 / Theorem 4.3),
* it is the evaluation core of the two baseline engines
  (:mod:`repro.baselines`),
* the streaming engine reuses it to evaluate XQuery⁻ subexpressions over
  buffered data (buffers are turned into small trees on demand).

Output is produced as a flat string: fixed strings are emitted verbatim
(they are literal markup in the paper's reading of queries) and subtrees are
serialized without insignificant whitespace -- the same convention the
streaming engine uses, so outputs are directly comparable.

Comparison semantics follow XQuery's existential general comparisons: a
comparison between two sequences holds if *some* pair of atomised items
satisfies it.  Items that look like numbers on both sides are compared
numerically, otherwise as strings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.xmlstream.serializer import escape_text, serialize_events
from repro.xmlstream.tree import XMLNode
from repro.xquery.ast import (
    AndCondition,
    ComparisonCondition,
    Condition,
    EmptyCondition,
    EmptyExpr,
    ExistsCondition,
    ForExpr,
    IfExpr,
    NotCondition,
    NumberLiteral,
    OrCondition,
    PathOutputExpr,
    PathRef,
    ROOT_VARIABLE,
    ScaledPath,
    SequenceExpr,
    StringLiteral,
    TextExpr,
    VarOutputExpr,
    XQExpr,
)
from repro.xquery.errors import XQueryEvaluationError

Environment = Dict[str, XMLNode]


def evaluate_query(
    expr: XQExpr,
    root: XMLNode,
    *,
    root_var: str = ROOT_VARIABLE,
    environment: Optional[Environment] = None,
) -> str:
    """Evaluate ``expr`` against the document rooted at ``root``.

    ``root`` is the node the distinguished variable ``$ROOT`` is bound to;
    paths of the form ``$ROOT/a/...`` start *at* this node, i.e. ``a`` must be
    the document element.  Wrap the document element in a virtual node if you
    follow the paper's convention -- :func:`document_environment` does this.
    """
    env: Environment = dict(environment or {})
    env.setdefault(root_var, root)
    output: List[str] = []
    _evaluate(expr, env, output)
    return "".join(output)


def document_environment(document_root: XMLNode, *, root_var: str = ROOT_VARIABLE) -> Environment:
    """Bind ``$ROOT`` to a virtual node whose single child is the document element."""
    virtual = XMLNode("#document", [document_root])
    return {root_var: virtual}


def evaluate_to_string(expr: XQExpr, document_root: XMLNode, *, root_var: str = ROOT_VARIABLE) -> str:
    """Evaluate with the paper's convention that ``$ROOT`` denotes the document.

    ``$ROOT/bib`` then selects the document element ``bib`` itself.
    """
    env = document_environment(document_root, root_var=root_var)
    output: List[str] = []
    _evaluate(expr, env, output)
    return "".join(output)


# ---------------------------------------------------------------------------
# Expression evaluation


def _evaluate(expr: XQExpr, env: Environment, output: List[str]) -> None:
    if isinstance(expr, EmptyExpr):
        return
    if isinstance(expr, TextExpr):
        output.append(expr.text)
        return
    if isinstance(expr, SequenceExpr):
        for item in expr.items:
            _evaluate(item, env, output)
        return
    if isinstance(expr, ForExpr):
        nodes = _resolve_path(env, expr.source, expr.path)
        for node in nodes:
            inner_env = dict(env)
            inner_env[expr.var] = node
            if expr.where is not None and not evaluate_condition(expr.where, inner_env):
                continue
            _evaluate(expr.body, inner_env, output)
        return
    if isinstance(expr, IfExpr):
        if evaluate_condition(expr.condition, env):
            _evaluate(expr.body, env, output)
        return
    if isinstance(expr, PathOutputExpr):
        for node in _resolve_path(env, expr.var, expr.path):
            output.append(_serialize_node(node))
        return
    if isinstance(expr, VarOutputExpr):
        node = _lookup(env, expr.var)
        output.append(_serialize_node(node))
        return
    raise TypeError(f"not an XQuery- expression: {expr!r}")


def _lookup(env: Environment, var: str) -> XMLNode:
    try:
        return env[var]
    except KeyError:
        raise XQueryEvaluationError(f"unbound variable {var}") from None


def _resolve_path(env: Environment, var: str, path) -> List[XMLNode]:
    return _lookup(env, var).select_path(path)


def _serialize_node(node: XMLNode) -> str:
    return serialize_events(node.to_events())


# ---------------------------------------------------------------------------
# Condition evaluation


def evaluate_condition(condition: Condition, env: Environment) -> bool:
    """Evaluate a condition under ``env`` with existential comparison semantics."""
    from repro.xquery.ast import TrueCondition

    if isinstance(condition, TrueCondition):
        return True
    if isinstance(condition, AndCondition):
        return all(evaluate_condition(item, env) for item in condition.items)
    if isinstance(condition, OrCondition):
        return any(evaluate_condition(item, env) for item in condition.items)
    if isinstance(condition, NotCondition):
        return not evaluate_condition(condition.inner, env)
    if isinstance(condition, ExistsCondition):
        return bool(_resolve_path(env, condition.ref.var, condition.ref.path))
    if isinstance(condition, EmptyCondition):
        return not _resolve_path(env, condition.ref.var, condition.ref.path)
    if isinstance(condition, ComparisonCondition):
        left_values = _operand_values(condition.left, env)
        right_values = _operand_values(condition.right, env)
        return compare_existential(left_values, condition.op, right_values)
    raise TypeError(f"not a condition: {condition!r}")


def _operand_values(operand, env: Environment) -> List[str]:
    if isinstance(operand, PathRef):
        return [node.text_content() for node in _resolve_path(env, operand.var, operand.path)]
    if isinstance(operand, StringLiteral):
        return [operand.value]
    if isinstance(operand, NumberLiteral):
        return [_format_number(operand.value)]
    if isinstance(operand, ScaledPath):
        values = []
        for node in _resolve_path(env, operand.ref.var, operand.ref.path):
            number = _as_number(node.text_content())
            if number is not None:
                values.append(_format_number(operand.coefficient * number))
        return values
    raise TypeError(f"not an operand: {operand!r}")


def compare_existential(left_values: List[str], op: str, right_values: List[str]) -> bool:
    """Existential general comparison over two atomised value sequences."""
    for left in left_values:
        for right in right_values:
            if _compare_atomic(left, op, right):
                return True
    return False


def _compare_atomic(left: str, op: str, right: str) -> bool:
    left_number = _as_number(left)
    right_number = _as_number(right)
    if left_number is not None and right_number is not None:
        return _apply_op(left_number, op, right_number)
    return _apply_op(left.strip(), op, right.strip())


def _apply_op(left, op: str, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"invalid comparison operator {op!r}")


def _as_number(value: str) -> Optional[float]:
    try:
        return float(value.strip())
    except (ValueError, AttributeError):
        return None


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(value)


def escape_output_text(text: str) -> str:
    """Escape character data the same way the streaming engine does."""
    return escape_text(text)
