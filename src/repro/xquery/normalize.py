"""The XQuery⁻ normal form (Section 4.1, Figure 1).

The normalisation rewrites a query until

1. all for-loop paths are *simple-step* paths ``$x/a``,
2. there are no conditional for-loops (``where`` clauses are pushed into the
   loop body as ``if`` expressions),
3. every ``{if χ then α}`` has a body ``α`` that is either a fixed string or
   ``{$x}``,
4. there are no ``{$x/π}`` outputs (they become for-loops over ``π``).

Rule applications (Theorem 4.1) are linear in the query size; the
implementation performs a single recursive pass that normalises bodies first
and then pushes conditionals down through the already-normalised bodies.
"""

from __future__ import annotations

from typing import Optional

from repro.xquery.ast import (
    AndCondition,
    Condition,
    EmptyExpr,
    ForExpr,
    IfExpr,
    PathOutputExpr,
    SequenceExpr,
    TextExpr,
    VarOutputExpr,
    XQExpr,
    sequence,
)
from repro.xquery.errors import XQueryTypeError


class FreshVariables:
    """Generator of fresh variable names for normalisation-introduced loops."""

    def __init__(self, prefix: str = "$__v"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: Optional[str] = None) -> str:
        """Return a new, unused variable name.

        ``hint`` (typically the tag name the variable iterates over) is woven
        into the name to keep normalised queries readable.
        """
        self._counter += 1
        if hint:
            safe_hint = "".join(char for char in hint if char.isalnum() or char == "_")
            return f"{self._prefix}_{safe_hint}_{self._counter}"
        return f"{self._prefix}_{self._counter}"


def normalize(expr: XQExpr, *, fresh: Optional[FreshVariables] = None) -> XQExpr:
    """Return the normalisation of ``expr`` (Figure 1)."""
    fresh = fresh or FreshVariables()
    return _normalize(expr, fresh)


def _normalize(expr: XQExpr, fresh: FreshVariables) -> XQExpr:
    if isinstance(expr, (EmptyExpr, TextExpr, VarOutputExpr)):
        return expr
    if isinstance(expr, SequenceExpr):
        return sequence([_normalize(item, fresh) for item in expr.items])
    if isinstance(expr, PathOutputExpr):
        # { $y/π }  ==>  { for $x in $y/π return {$x} }
        loop_var = fresh.fresh(expr.path[-1] if expr.path else None)
        loop = ForExpr(var=loop_var, source=expr.var, path=expr.path, body=VarOutputExpr(loop_var))
        return _normalize(loop, fresh)
    if isinstance(expr, ForExpr):
        return _normalize_for(expr, fresh)
    if isinstance(expr, IfExpr):
        body = _normalize(expr.body, fresh)
        return _push_if(expr.condition, body, fresh)
    raise TypeError(f"not an XQuery- expression: {expr!r}")


def _normalize_for(expr: ForExpr, fresh: FreshVariables) -> XQExpr:
    # Conditional for-loop: push the where-condition into the body.
    if expr.where is not None:
        inner = IfExpr(expr.where, expr.body)
        return _normalize_for(ForExpr(expr.var, expr.source, expr.path, inner), fresh)
    # Multi-step path: introduce a fresh intermediate loop.
    if len(expr.path) > 1:
        intermediate = fresh.fresh(expr.path[0])
        inner = ForExpr(var=expr.var, source=intermediate, path=expr.path[1:], body=expr.body)
        outer = ForExpr(var=intermediate, source=expr.source, path=expr.path[:1], body=inner)
        return _normalize_for(outer, fresh)
    if not expr.path:
        raise XQueryTypeError(f"for-loop over an empty path binding {expr.var}")
    return ForExpr(expr.var, expr.source, expr.path, _normalize(expr.body, fresh))


def _push_if(condition: Condition, body: XQExpr, fresh: FreshVariables) -> XQExpr:
    """Push ``if condition then`` through an already-normalised ``body``."""
    if isinstance(body, EmptyExpr):
        return body
    if isinstance(body, SequenceExpr):
        # { if χ then α β }  ==>  { if χ then α } { if χ then β }
        return sequence([_push_if(condition, item, fresh) for item in body.items])
    if isinstance(body, ForExpr):
        # { if χ then {for ...} }  ==>  {for ... return {if χ then ...}}
        return ForExpr(
            body.var, body.source, body.path, _push_if(condition, body.body, fresh)
        )
    if isinstance(body, IfExpr):
        # { if χ then { if ψ then α } }  ==>  { if χ and ψ then α }
        return _push_if(AndCondition([condition, body.condition]), body.body, fresh)
    if isinstance(body, (TextExpr, VarOutputExpr)):
        return IfExpr(condition, body)
    if isinstance(body, PathOutputExpr):  # pragma: no cover - removed by normalisation
        return _push_if(condition, _normalize(body, fresh), fresh)
    raise TypeError(f"not an XQuery- expression: {body!r}")


def is_normal_form(expr: XQExpr) -> bool:
    """Check the three normal-form properties of Section 4.1."""
    if isinstance(expr, (EmptyExpr, TextExpr, VarOutputExpr)):
        return True
    if isinstance(expr, PathOutputExpr):
        return False
    if isinstance(expr, SequenceExpr):
        return all(is_normal_form(item) for item in expr.items)
    if isinstance(expr, ForExpr):
        if expr.where is not None or len(expr.path) != 1:
            return False
        return is_normal_form(expr.body)
    if isinstance(expr, IfExpr):
        return isinstance(expr.body, (TextExpr, VarOutputExpr))
    raise TypeError(f"not an XQuery- expression: {expr!r}")
