"""Algebraic simplifications driven by cardinality constraints (Section 7).

The paper's concluding section sketches two DTD-driven simplifications that
precede the FluX rewriting:

* **For-loop fusion.**  Two adjacent loops over the same path can be merged
  when the path selects at most one node per binding of the outer variable
  (``a ∈ ||≤1``)::

      { for $x in $r/a return α } { for $y in $r/a return β }
          ==>   { for $x in $r/a return α β[$y := $x] }

  Merging loops frequently removes the need to buffer the path at all
  (e.g. the ``publisher`` example in Section 7).

* **Singleton-loop re-anchoring.**  A loop nested inside another loop over
  the *same* singleton path re-traverses data that the enclosing loop already
  binds; the inner loop can be replaced by its body with the loop variable
  substituted::

      { for $u in $r/a return ... { for $w in $r/a return γ } ... }
          ==>   { for $u in $r/a return ... γ[$w := $u] ... }      (a ∈ ||≤1)

  This is what makes the re-rooted absolute paths of XMark queries 8 and 11
  (``/site/closed_auctions/...`` inside a loop over ``/site/people/person``)
  schedulable: after re-anchoring, the dependency on ``closed_auctions``
  becomes visible to the Figure-2 algorithm at the ``site`` level, which then
  produces exactly the "buffer people and closed auctions, join from buffers"
  plan the paper reports.

Both passes operate on *normalised* queries (single-step loop paths) and need
the DTD for the cardinality checks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dtd.schema import DTD, ROOT_ELEMENT
from repro.xquery.analysis import rename_variable
from repro.xquery.ast import (
    EmptyExpr,
    ForExpr,
    IfExpr,
    PathOutputExpr,
    ROOT_VARIABLE,
    SequenceExpr,
    TextExpr,
    VarOutputExpr,
    XQExpr,
    sequence,
)

#: Maximum number of fixpoint rounds for :func:`simplify`.
_MAX_ROUNDS = 8


class _TypeContext:
    """Tracks the DTD element type each in-scope variable ranges over."""

    def __init__(self, dtd: DTD, root_var: str):
        self._dtd = dtd
        self._types: Dict[str, str] = {root_var: ROOT_ELEMENT, ROOT_VARIABLE: ROOT_ELEMENT}

    def bind(self, var: str, element_type: Optional[str]) -> None:
        if element_type is not None:
            self._types[var] = element_type

    def element_type(self, var: str) -> Optional[str]:
        return self._types.get(var)

    def child_type(self, var: str, step: str) -> Optional[str]:
        """The DTD element type a single path step resolves to, if declared."""
        if step in self._dtd:
            return step
        return None

    def at_most_one(self, var: str, step: str) -> bool:
        """Whether ``step ∈ ||≤1`` holds for the content model of ``var``'s type."""
        parent_type = self.element_type(var)
        if parent_type is None or parent_type not in self._dtd:
            return False
        return self._dtd.constraints(parent_type).at_most_one(step)

    def copy(self) -> "_TypeContext":
        clone = _TypeContext.__new__(_TypeContext)
        clone._dtd = self._dtd
        clone._types = dict(self._types)
        return clone


# ---------------------------------------------------------------------------
# Singleton-loop re-anchoring


def reanchor_singleton_loops(expr: XQExpr, dtd: DTD, *, root_var: str = ROOT_VARIABLE) -> XQExpr:
    """Replace nested loops over already-bound singleton paths by their bodies."""
    context = _TypeContext(dtd, root_var)
    return _reanchor(expr, dtd, context, {})


def _reanchor(
    expr: XQExpr,
    dtd: DTD,
    context: _TypeContext,
    singleton_bindings: Dict[Tuple[str, Tuple[str, ...]], str],
) -> XQExpr:
    if isinstance(expr, (EmptyExpr, TextExpr, VarOutputExpr, PathOutputExpr)):
        return expr
    if isinstance(expr, SequenceExpr):
        return sequence(
            [_reanchor(item, dtd, context, singleton_bindings) for item in expr.items]
        )
    if isinstance(expr, IfExpr):
        return IfExpr(expr.condition, _reanchor(expr.body, dtd, context, singleton_bindings))
    if isinstance(expr, ForExpr):
        key = (expr.source, expr.path)
        bound_var = singleton_bindings.get(key)
        if bound_var is not None and bound_var != expr.var:
            # The enclosing scope already binds this singleton path: drop the
            # loop and substitute the existing variable.
            replaced = rename_variable(expr.body, expr.var, bound_var)
            return _reanchor(replaced, dtd, context, singleton_bindings)
        inner_context = context.copy()
        inner_bindings = dict(singleton_bindings)
        step = expr.path[0] if len(expr.path) == 1 else None
        if step is not None:
            inner_context.bind(expr.var, inner_context.child_type(expr.source, step))
            if context.at_most_one(expr.source, step):
                inner_bindings[key] = expr.var
        body = _reanchor(expr.body, dtd, inner_context, inner_bindings)
        return ForExpr(expr.var, expr.source, expr.path, body, expr.where)
    raise TypeError(f"not an XQuery- expression: {expr!r}")


# ---------------------------------------------------------------------------
# For-loop fusion


def fuse_for_loops(expr: XQExpr, dtd: DTD, *, root_var: str = ROOT_VARIABLE) -> XQExpr:
    """Merge adjacent for-loops over the same singleton path (Section 7 rule)."""
    context = _TypeContext(dtd, root_var)
    return _fuse(expr, dtd, context)


def _fuse(expr: XQExpr, dtd: DTD, context: _TypeContext) -> XQExpr:
    if isinstance(expr, (EmptyExpr, TextExpr, VarOutputExpr, PathOutputExpr)):
        return expr
    if isinstance(expr, IfExpr):
        return IfExpr(expr.condition, _fuse(expr.body, dtd, context))
    if isinstance(expr, ForExpr):
        inner_context = context.copy()
        if len(expr.path) == 1:
            inner_context.bind(expr.var, inner_context.child_type(expr.source, expr.path[0]))
        return ForExpr(
            expr.var, expr.source, expr.path, _fuse(expr.body, dtd, inner_context), expr.where
        )
    if isinstance(expr, SequenceExpr):
        items = [_fuse(item, dtd, context) for item in expr.items]
        fused = []
        for item in items:
            previous = fused[-1] if fused else None
            if (
                previous is not None
                and isinstance(previous, ForExpr)
                and isinstance(item, ForExpr)
                and previous.source == item.source
                and previous.path == item.path
                and previous.where is None
                and item.where is None
                and len(item.path) == 1
                and context.at_most_one(item.source, item.path[0])
            ):
                merged_body = sequence(
                    [previous.body, rename_variable(item.body, item.var, previous.var)]
                )
                inner_context = context.copy()
                inner_context.bind(
                    previous.var, inner_context.child_type(previous.source, previous.path[0])
                )
                fused[-1] = ForExpr(
                    previous.var,
                    previous.source,
                    previous.path,
                    _fuse(merged_body, dtd, inner_context),
                )
            else:
                fused.append(item)
        return sequence(fused)
    raise TypeError(f"not an XQuery- expression: {expr!r}")


# ---------------------------------------------------------------------------
# Combined pass


def simplify(expr: XQExpr, dtd: DTD, *, root_var: str = ROOT_VARIABLE) -> XQExpr:
    """Apply re-anchoring and loop fusion until a fixpoint is reached."""
    current = expr
    for _ in range(_MAX_ROUNDS):
        reanchored = reanchor_singleton_loops(current, dtd, root_var=root_var)
        fused = fuse_for_loops(reanchored, dtd, root_var=root_var)
        if fused == current:
            return current
        current = fused
    return current
