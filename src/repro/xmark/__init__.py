"""XMark-like workload substrate.

The paper's experiments (Section 6, Figure 4) run adapted XMark queries
1, 8, 11, 13 and 20 over documents produced by the XMark ``xmlgen`` data
generator, with all attributes converted into subelements.  This package
provides the equivalent ingredients:

* :mod:`repro.xmark.dtd` -- the adapted (attribute-free) auction-site DTD,
* :mod:`repro.xmark.generator` -- a deterministic, seedable data generator
  that emits documents of a chosen scale directly as a stream of text chunks,
* :mod:`repro.xmark.queries` -- the five benchmark queries exactly as listed
  in Appendix A,
* :mod:`repro.xmark.ticker` -- a synthetic infinite auction ticker: an
  endless stream of small, deterministic ``<site>`` documents for the
  continuous-feed mode (:mod:`repro.feeds`),
* :mod:`repro.xmark.usecases` -- the bibliography DTDs and XMP use-case
  queries used as running examples in Sections 1 and 4.3.
"""

from repro.xmark.dtd import XMARK_DTD_SOURCE, xmark_dtd
from repro.xmark.generator import (
    XMarkConfig,
    config_for_scale,
    estimate_size_bytes,
    generate_document,
    iter_document_chunks,
    write_document,
)
from repro.xmark.queries import BENCHMARK_QUERIES, query_source
from repro.xmark.ticker import (
    DEFAULT_TICK_SCALE,
    TICK_SEPARATOR,
    iter_ticker_chunks,
    iter_ticker_documents,
    ticker_document,
)
from repro.xmark.usecases import (
    BIB_DTD_ORDERED,
    BIB_DTD_UNORDERED,
    BIB_DTD_USECASES,
    XMP_Q1,
    XMP_Q2,
    XMP_Q3,
    generate_bibliography,
)

__all__ = [
    "BENCHMARK_QUERIES",
    "BIB_DTD_ORDERED",
    "BIB_DTD_UNORDERED",
    "BIB_DTD_USECASES",
    "DEFAULT_TICK_SCALE",
    "TICK_SEPARATOR",
    "XMARK_DTD_SOURCE",
    "XMP_Q1",
    "XMP_Q2",
    "XMP_Q3",
    "XMarkConfig",
    "config_for_scale",
    "estimate_size_bytes",
    "generate_bibliography",
    "generate_document",
    "iter_document_chunks",
    "iter_ticker_chunks",
    "iter_ticker_documents",
    "query_source",
    "ticker_document",
    "write_document",
    "xmark_dtd",
]
