"""XMP use-case queries and bibliography DTDs (Sections 1 and 4.3).

The paper develops its running examples on the bibliography domain of the
W3C XML Query Use Cases: query Q1 (books after 1991 published by
Addison-Wesley), Q2 (flat title/author pairs) and a join query Q3 (authors of
articles co-authored by book editors).  This module provides those queries,
the DTD variants the paper contrasts (with and without order constraints),
and a small deterministic bibliography generator so that the examples and
the ablation benches have data to run on.
"""

from __future__ import annotations

import random
from typing import List

#: The weak DTD of Section 1: no order constraint between titles and authors.
BIB_DTD_UNORDERED = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
"""

#: The XML Query Use Cases DTD of Section 1: titles precede authors.
BIB_DTD_USECASES = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

#: The DTD used in Example 4.4 for the ordered case: authors precede titles.
BIB_DTD_ORDERED = """
<!ELEMENT bib (book)*>
<!ELEMENT book (author*,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
"""

#: The mixed bibliography DTDs of Example 4.6 (books and articles).
BIB_ARTICLES_DTD_UNORDERED = """
<!ELEMENT bib (book|article)*>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
"""

BIB_ARTICLES_DTD_ORDERED = """
<!ELEMENT bib (book*,article*)>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
"""

#: DTD for the weak variant of XMP Q1 (Example 4.5): no order constraints.
BIB_Q1_DTD_UNORDERED = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title|publisher|year)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
"""

#: DTD for the ordered variant of XMP Q1: publisher and year precede title.
BIB_Q1_DTD_ORDERED = """
<!ELEMENT bib (book)*>
<!ELEMENT book (publisher,year,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
"""

#: XMP Q1: books published by Addison-Wesley after 1991 (Example 4.2).
XMP_Q1 = """
<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/year > 1991
  return <book> {$b/year} {$b/title} </book> }
</bib>
"""

#: XMP Q2: flat list of title/author pairs (Example 4.4).
XMP_Q2 = """
<results>
{ for $b in $ROOT/bib/book return
  { for $t in $b/title return
    { for $a in $b/author return
      <result> {$t} {$a} </result> } } }
</results>
"""

#: XMP Q3: authors of articles co-authored by book editors (Example 4.6).
XMP_Q3 = """
<results>
{ for $bib in $ROOT/bib return
  { for $article in $bib/article return
    { for $book in $bib/book
      where $article/author = $book/editor
      return <result> {$article/author} </result> } } }
</results>
"""

#: The intro query of Section 1 (XMP Q3 of the use cases document).
XMP_INTRO = """
<results>
{ for $b in $ROOT/bib/book return
  <result> {$b/title} {$b/author} </result> }
</results>
"""

_PUBLISHERS = ("Addison-Wesley", "Morgan Kaufmann", "Springer", "OReilly")
_WORDS = (
    "data web streams queries processing advanced systems principles "
    "foundations networking algorithms semistructured compilers databases"
).split()
_AUTHORS = (
    "Stevens", "Abiteboul", "Buneman", "Suciu", "Ullman", "Widom", "Koch",
    "Scherzinger", "Schweikardt", "Stegmaier", "Garcia-Molina", "Vianu",
)


def generate_bibliography(
    books: int = 50,
    *,
    articles: int = 0,
    seed: int = 7,
    ordered: bool = True,
    authors_first: bool = False,
    max_authors: int = 3,
) -> str:
    """A deterministic bibliography document.

    ``ordered=True`` emits titles before authors (valid for the use-cases
    DTD); ``ordered=False`` interleaves them (valid only for the weak DTD);
    ``authors_first=True`` emits all authors before all titles (valid for the
    Example-4.4 DTD ``(author*, title*)``).  When ``articles`` is positive,
    the document also contains article elements and follows the Example-4.6
    schema (books before articles).
    """
    rng = random.Random(seed)
    parts: List[str] = ["<bib>"]
    for index in range(books):
        title = " ".join(rng.choice(_WORDS) for _ in range(3)).title()
        authors = [rng.choice(_AUTHORS) for _ in range(rng.randint(1, max_authors))]
        use_editor = articles > 0 and rng.random() < 0.5
        year = rng.randint(1985, 2004)
        publisher = rng.choice(_PUBLISHERS)
        parts.append("<book>")
        if articles > 0:
            # Example 4.6 schema: title, (author+ | editor+), publisher.
            parts.append(f"<title>{title}</title>")
            names = authors
            tag = "editor" if use_editor else "author"
            for name in names:
                parts.append(f"<{tag}>{name}</{tag}>")
            parts.append(f"<publisher>{publisher}</publisher>")
        elif authors_first:
            # Example 4.4's second DTD: (author*, title*).
            for name in authors:
                parts.append(f"<author>{name}</author>")
            parts.append(f"<title>{title}</title>")
            if rng.random() < 0.3:
                parts.append(f"<title>{title} (second edition)</title>")
        elif ordered:
            parts.append(f"<title>{title}</title>")
            for name in authors:
                parts.append(f"<author>{name}</author>")
            parts.append(f"<publisher>{publisher}</publisher>")
            parts.append(f"<price>{rng.randint(20, 90)}</price>")
        else:
            pieces = [f"<title>{title}</title>"] + [f"<author>{name}</author>" for name in authors]
            rng.shuffle(pieces)
            parts.extend(pieces)
        parts.append("</book>")
        __ = year
    for index in range(articles):
        title = " ".join(rng.choice(_WORDS) for _ in range(3)).title()
        parts.append("<article>")
        parts.append(f"<title>{title}</title>")
        for _ in range(rng.randint(1, max_authors)):
            parts.append(f"<author>{rng.choice(_AUTHORS)}</author>")
        parts.append(f"<journal>{rng.choice(_WORDS).title()} Journal</journal>")
        parts.append("</article>")
    parts.append("</bib>")
    return "".join(parts)


def generate_usecase_bibliography(books: int = 50, *, seed: int = 7) -> str:
    """Bibliography valid for :data:`BIB_DTD_USECASES` (title, authors, publisher, price)."""
    return generate_bibliography(books, seed=seed, ordered=True)


def generate_q1_bibliography(books: int = 50, *, seed: int = 7, ordered: bool = True) -> str:
    """Bibliography for the XMP-Q1 example (publisher/year/title books).

    ``ordered=True`` emits ``publisher, year, title*`` (valid for
    :data:`BIB_Q1_DTD_ORDERED`); ``ordered=False`` shuffles the children
    (valid only for the weak :data:`BIB_Q1_DTD_UNORDERED`).
    """
    rng = random.Random(seed)
    parts: List[str] = ["<bib>"]
    for _ in range(books):
        publisher = rng.choice(_PUBLISHERS)
        year = rng.randint(1985, 2004)
        titles = [
            " ".join(rng.choice(_WORDS) for _ in range(3)).title()
            for _ in range(rng.randint(1, 2))
        ]
        pieces = [f"<publisher>{publisher}</publisher>", f"<year>{year}</year>"]
        pieces += [f"<title>{title}</title>" for title in titles]
        if not ordered:
            rng.shuffle(pieces)
        parts.append("<book>" + "".join(pieces) + "</book>")
    parts.append("</bib>")
    return "".join(parts)
