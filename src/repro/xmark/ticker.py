"""A synthetic infinite XMark auction ticker.

The continuous-feed workload: an endless stream of small, complete XMark
``<site>`` documents -- one "tick" of auction activity each -- separated
by newlines.  Deterministic per ``(seed, index)``: tick *i* is generated
from an :class:`~repro.xmark.generator.XMarkConfig` seeded with
``seed + i``, so a feed can be replayed byte-identically (the substrate
of the crash/resume soak) and any single tick can be regenerated solo to
compare per-document output.

Two shapes of iteration:

* :func:`iter_ticker_documents` -- one complete document text per tick,
* :func:`iter_ticker_chunks` -- the concatenated stream re-cut into
  fixed-size byte chunks, the shape a network delivers (chunk boundaries
  land anywhere, including across document boundaries).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.xmark.generator import config_for_scale, generate_document

#: Default per-tick scale: a few kilobytes of auction activity per document.
DEFAULT_TICK_SCALE = 0.01
#: Separator between consecutive ticks in the concatenated stream.
TICK_SEPARATOR = "\n"


def ticker_document(index: int, *, seed: int = 42, scale: float = DEFAULT_TICK_SCALE) -> str:
    """The complete document text of tick ``index`` (deterministic)."""
    if index < 0:
        raise ValueError(f"tick index must be >= 0, got {index}")
    return generate_document(config_for_scale(scale, seed=seed + index))


def iter_ticker_documents(
    *,
    documents: Optional[int] = None,
    seed: int = 42,
    scale: float = DEFAULT_TICK_SCALE,
) -> Iterator[str]:
    """Yield complete tick documents; endless when ``documents`` is None."""
    index = 0
    while documents is None or index < documents:
        yield ticker_document(index, seed=seed, scale=scale)
        index += 1


def iter_ticker_chunks(
    *,
    documents: Optional[int] = None,
    seed: int = 42,
    scale: float = DEFAULT_TICK_SCALE,
    chunk_size: int = 8192,
) -> Iterator[bytes]:
    """The concatenated ticker stream, re-cut into ``chunk_size``-byte chunks.

    Every document is followed by :data:`TICK_SEPARATOR`; chunk boundaries
    fall wherever the byte count says, which is exactly what a feed must
    tolerate.  Endless when ``documents`` is None.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    pending = bytearray()
    for document in iter_ticker_documents(documents=documents, seed=seed, scale=scale):
        pending += document.encode("utf-8")
        pending += TICK_SEPARATOR.encode("utf-8")
        while len(pending) >= chunk_size:
            yield bytes(pending[:chunk_size])
            del pending[:chunk_size]
    if pending:
        yield bytes(pending)


__all__ = [
    "DEFAULT_TICK_SCALE",
    "TICK_SEPARATOR",
    "iter_ticker_chunks",
    "iter_ticker_documents",
    "ticker_document",
]
