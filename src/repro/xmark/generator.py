"""Deterministic XMark-like data generator.

The original experiments used the XMark ``xmlgen`` tool (V 0.96) to produce
5/10/50/100 MB documents.  ``xmlgen`` is a C program we cannot ship, so this
module implements a generator that

* produces documents valid with respect to the adapted DTD of
  :mod:`repro.xmark.dtd` (attributes already converted to subelements),
* is fully deterministic for a given seed and configuration, so benchmark
  runs are repeatable,
* streams its output as text chunks, so arbitrarily large documents can be
  generated without holding them in memory,
* follows the rough XMark proportions between people, items and auctions and
  reuses person ids in closed auctions, so the join queries (8 and 11)
  produce non-trivial results.

Scale is controlled either directly through :class:`XMarkConfig` or through
:func:`config_for_scale`, where scale ``1.0`` corresponds to roughly one
megabyte of XML text.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import Iterator, List

_WORDS = (
    "stream schema buffer query event handler order constraint projection "
    "auction bidder seller gold silver amber quartz willow harbor meadow "
    "crimson copper ledger parcel antique vintage rare mint boxed sealed "
    "signed limited edition catalogue shipping international courier "
    "payment creditcard cash wire transfer money order personal check"
).split()

_FIRST_NAMES = (
    "Ada Alan Barbara Carl Dana Edsger Frances Grace Hedy Ivan John Katherine "
    "Leslie Margaret Niklaus Olga Peter Quentin Radia Stephen Tim Ursula "
    "Vint Wendy Xavier Yvonne Zhores"
).split()

_LAST_NAMES = (
    "Lovelace Turing Liskov Gauss Scott Dijkstra Allen Hopper Lamarr Sutherland "
    "Backus Johnson Lamport Hamilton Wirth Ladyzhenskaya Naur Stafford Perlman "
    "Cook BernersLee Franklin Cerf Carlson Serra Brill Alferov"
).split()

_CITIES = (
    "Vienna Munich Berlin Cairo Sydney Toronto Lisbon Oslo Prague Kyoto "
    "Auckland Santiago Montevideo Nairobi Reykjavik Ljubljana"
).split()

_COUNTRIES = (
    "Austria Germany Egypt Australia Canada Portugal Norway Czechia Japan "
    "NewZealand Chile Uruguay Kenya Iceland Slovenia"
).split()

_CONTINENTS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


@dataclass(frozen=True)
class XMarkConfig:
    """Size knobs of the generated document."""

    people: int = 120
    items_per_region: int = 12
    open_auctions: int = 60
    closed_auctions: int = 60
    categories: int = 10
    seed: int = 42
    description_sentences: int = 2
    mails_per_item: int = 1

    def scaled(self, factor: float) -> "XMarkConfig":
        """A configuration scaled by ``factor`` (counts rounded, at least 1)."""

        def scale(value: int) -> int:
            return max(1, int(round(value * factor)))

        return XMarkConfig(
            people=scale(self.people),
            items_per_region=scale(self.items_per_region),
            open_auctions=scale(self.open_auctions),
            closed_auctions=scale(self.closed_auctions),
            categories=scale(self.categories),
            seed=self.seed,
            description_sentences=self.description_sentences,
            mails_per_item=self.mails_per_item,
        )


def config_for_scale(scale: float, *, seed: int = 42) -> XMarkConfig:
    """Configuration whose document is roughly ``scale`` megabytes of XML."""
    base = XMarkConfig(
        people=300,
        items_per_region=60,
        open_auctions=220,
        closed_auctions=220,
        categories=20,
        seed=seed,
    )
    return base.scaled(scale)


class _Writer:
    """Accumulates markup and flushes fixed-size chunks."""

    def __init__(self, chunk_size: int = 64 * 1024):
        self._parts: List[str] = []
        self._size = 0
        self._chunk_size = chunk_size

    def tag(self, name: str, value: str) -> None:
        self.raw(f"<{name}>{value}</{name}>")

    def open(self, name: str) -> None:
        self.raw(f"<{name}>")

    def close(self, name: str) -> None:
        self.raw(f"</{name}>")

    def raw(self, text: str) -> None:
        self._parts.append(text)
        self._size += len(text)

    def flush_ready(self) -> bool:
        return self._size >= self._chunk_size

    def take(self) -> str:
        chunk = "".join(self._parts)
        self._parts = []
        self._size = 0
        return chunk


class _XMarkGenerator:
    """Stateful generator of one document."""

    def __init__(self, config: XMarkConfig):
        self.config = config
        self.random = random.Random(config.seed)
        self.item_count = 0

    # ------------------------------------------------------------- helpers

    def words(self, count: int) -> str:
        return " ".join(self.random.choice(_WORDS) for _ in range(count))

    def sentence(self) -> str:
        return self.words(self.random.randint(6, 14)).capitalize() + "."

    def person_name(self) -> str:
        return f"{self.random.choice(_FIRST_NAMES)} {self.random.choice(_LAST_NAMES)}"

    def money(self, low: float, high: float) -> str:
        return f"{self.random.uniform(low, high):.2f}"

    # ----------------------------------------------------------- structure

    def emit(self, writer: _Writer) -> Iterator[str]:
        config = self.config
        writer.open("site")

        # -- regions ------------------------------------------------------
        writer.open("regions")
        for continent in _CONTINENTS:
            writer.open(continent)
            for _ in range(config.items_per_region):
                self._emit_item(writer)
                if writer.flush_ready():
                    yield writer.take()
            writer.close(continent)
        writer.close("regions")
        yield writer.take()

        # -- categories / catgraph ---------------------------------------
        writer.open("categories")
        for index in range(max(1, config.categories)):
            writer.open("category")
            writer.tag("category_id", f"category{index}")
            writer.tag("name", self.words(2))
            writer.open("description")
            writer.tag("text", self.sentence())
            writer.close("description")
            writer.close("category")
        writer.close("categories")
        writer.open("catgraph")
        for index in range(max(0, config.categories - 1)):
            writer.open("edge")
            writer.tag("edge_from", f"category{index}")
            writer.tag("edge_to", f"category{(index + 1) % config.categories}")
            writer.close("edge")
        writer.close("catgraph")
        yield writer.take()

        # -- people --------------------------------------------------------
        writer.open("people")
        for index in range(config.people):
            self._emit_person(writer, index)
            if writer.flush_ready():
                yield writer.take()
        writer.close("people")
        yield writer.take()

        # -- open auctions -------------------------------------------------
        writer.open("open_auctions")
        for index in range(config.open_auctions):
            self._emit_open_auction(writer, index)
            if writer.flush_ready():
                yield writer.take()
        writer.close("open_auctions")
        yield writer.take()

        # -- closed auctions ----------------------------------------------
        writer.open("closed_auctions")
        for index in range(config.closed_auctions):
            self._emit_closed_auction(writer, index)
            if writer.flush_ready():
                yield writer.take()
        writer.close("closed_auctions")
        writer.close("site")
        yield writer.take()

    # ------------------------------------------------------------ elements

    def _emit_item(self, writer: _Writer) -> None:
        config = self.config
        index = self.item_count
        self.item_count += 1
        writer.open("item")
        writer.tag("item_id", f"item{index}")
        writer.tag("location", self.random.choice(_COUNTRIES))
        writer.tag("quantity", str(self.random.randint(1, 5)))
        writer.tag("name", self.words(3))
        writer.tag("payment", "creditcard")
        writer.open("description")
        writer.tag("text", " ".join(self.sentence() for _ in range(config.description_sentences)))
        writer.close("description")
        writer.tag("shipping", "international courier")
        for _ in range(self.random.randint(1, 2)):
            writer.open("incategory")
            writer.tag(
                "incategory_category",
                f"category{self.random.randrange(max(1, config.categories))}",
            )
            writer.close("incategory")
        writer.open("mailbox")
        for _ in range(config.mails_per_item):
            writer.open("mail")
            writer.tag("from", self.person_name())
            writer.tag("to", self.person_name())
            writer.tag("date", self._date())
            writer.tag("text", self.sentence())
            writer.close("mail")
        writer.close("mailbox")
        writer.close("item")

    def _emit_person(self, writer: _Writer, index: int) -> None:
        config = self.config
        name = self.person_name()
        has_income = self.random.random() < 0.6
        income = self.money(30000, 150000)
        writer.open("person")
        writer.tag("person_id", f"person{index}")
        if has_income:
            writer.tag("person_income", income)
        writer.tag("name", name)
        writer.tag("emailaddress", f"mailto:{name.replace(' ', '.').lower()}@example.org")
        if self.random.random() < 0.5:
            writer.tag("phone", f"+{self.random.randint(1, 99)} {self.random.randint(1000000, 9999999)}")
        if self.random.random() < 0.6:
            writer.open("address")
            writer.tag("street", f"{self.random.randint(1, 99)} {self.random.choice(_WORDS)} street")
            writer.tag("city", self.random.choice(_CITIES))
            writer.tag("country", self.random.choice(_COUNTRIES))
            writer.tag("zipcode", str(self.random.randint(10000, 99999)))
            writer.close("address")
        if self.random.random() < 0.3:
            writer.tag("homepage", f"http://example.org/~person{index}")
        if self.random.random() < 0.4:
            writer.tag("creditcard", " ".join(str(self.random.randint(1000, 9999)) for _ in range(4)))
        if self.random.random() < 0.8:
            writer.open("profile")
            if has_income:
                writer.tag("profile_income", income)
            for _ in range(self.random.randint(0, 3)):
                writer.open("interest")
                writer.tag(
                    "interest_category",
                    f"category{self.random.randrange(max(1, config.categories))}",
                )
                writer.close("interest")
            if self.random.random() < 0.5:
                writer.tag("education", self.random.choice(["High School", "College", "Graduate School"]))
            if self.random.random() < 0.5:
                writer.tag("gender", self.random.choice(["male", "female"]))
            writer.tag("business", self.random.choice(["Yes", "No"]))
            if self.random.random() < 0.5:
                writer.tag("age", str(self.random.randint(18, 90)))
            writer.close("profile")
        if self.random.random() < 0.3:
            writer.open("watches")
            for _ in range(self.random.randint(1, 3)):
                writer.open("watch")
                writer.tag(
                    "watch_open_auction",
                    f"open_auction{self.random.randrange(max(1, config.open_auctions))}",
                )
                writer.close("watch")
            writer.close("watches")
        writer.close("person")

    def _emit_open_auction(self, writer: _Writer, index: int) -> None:
        config = self.config
        writer.open("open_auction")
        writer.tag("open_auction_id", f"open_auction{index}")
        writer.tag("initial", self.money(1, 300))
        if self.random.random() < 0.4:
            writer.tag("reserve", self.money(100, 1000))
        for _ in range(self.random.randint(0, 3)):
            writer.open("bidder")
            writer.tag("date", self._date())
            writer.tag("time", self._time())
            writer.open("personref")
            writer.tag("personref_person", f"person{self.random.randrange(max(1, config.people))}")
            writer.close("personref")
            writer.tag("increase", self.money(1, 30))
            writer.close("bidder")
        writer.tag("current", self.money(10, 1500))
        writer.open("itemref")
        writer.tag("itemref_item", f"item{self.random.randrange(max(1, self.item_count))}")
        writer.close("itemref")
        writer.open("seller")
        writer.tag("seller_person", f"person{self.random.randrange(max(1, config.people))}")
        writer.close("seller")
        writer.tag("quantity", str(self.random.randint(1, 3)))
        writer.tag("type", self.random.choice(["Regular", "Featured"]))
        writer.open("interval")
        writer.tag("start", self._date())
        writer.tag("end", self._date())
        writer.close("interval")
        writer.close("open_auction")

    def _emit_closed_auction(self, writer: _Writer, index: int) -> None:
        config = self.config
        writer.open("closed_auction")
        writer.tag("closed_auction_id", f"closed_auction{index}")
        writer.open("seller")
        writer.tag("seller_person", f"person{self.random.randrange(max(1, config.people))}")
        writer.close("seller")
        writer.open("buyer")
        writer.tag("buyer_person", f"person{self.random.randrange(max(1, config.people))}")
        writer.close("buyer")
        writer.open("itemref")
        writer.tag("itemref_item", f"item{self.random.randrange(max(1, self.item_count))}")
        writer.close("itemref")
        writer.tag("price", self.money(10, 2000))
        writer.tag("date", self._date())
        writer.tag("quantity", str(self.random.randint(1, 3)))
        writer.tag("type", self.random.choice(["Regular", "Featured"]))
        if self.random.random() < 0.5:
            writer.open("annotation")
            writer.open("description")
            writer.tag("text", self.sentence())
            writer.close("description")
            writer.close("annotation")
        writer.close("closed_auction")

    def _date(self) -> str:
        return (
            f"{self.random.randint(1, 28):02d}/"
            f"{self.random.randint(1, 12):02d}/"
            f"{self.random.randint(1998, 2004)}"
        )

    def _time(self) -> str:
        return f"{self.random.randint(0, 23):02d}:{self.random.randint(0, 59):02d}:00"


# ---------------------------------------------------------------------------
# Public entry points


def iter_document_chunks(config: XMarkConfig) -> Iterator[str]:
    """Stream the document as text chunks (never holds the whole document)."""
    generator = _XMarkGenerator(config)
    writer = _Writer()
    for chunk in generator.emit(writer):
        if chunk:
            yield chunk


def generate_document(config: XMarkConfig) -> str:
    """Generate the whole document as a single string."""
    return "".join(iter_document_chunks(config))


def write_document(path, config: XMarkConfig) -> int:
    """Write the document to ``path``; returns the number of bytes written."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for chunk in iter_document_chunks(config):
            handle.write(chunk)
            written += len(chunk)
    return written


def estimate_size_bytes(config: XMarkConfig) -> int:
    """Exact size of the document the configuration produces (generates it once)."""
    return sum(len(chunk) for chunk in iter_document_chunks(config))
