"""The adapted XMark auction-site DTD.

This is the XMark schema restricted to the elements the five benchmark
queries touch (plus enough surrounding structure to keep the documents
realistic), with every attribute converted into a leading subelement of its
parent -- exactly the adaptation described in Section 6 / Appendix A of the
paper (``<person id="...">`` becomes ``<person><person_id>...``).

Two order facts in this schema carry the whole optimisation story:

* inside ``person``, ``person_id`` precedes ``name`` (and inside ``item``,
  ``name`` precedes ``description``), which lets queries 1 and 13 run with
  zero buffering;
* inside ``site``, ``people`` precedes ``open_auctions`` and
  ``closed_auctions``, which tells the scheduler that the joins of queries 8
  and 11 must buffer people and auctions (projected) and can only be
  evaluated once the auctions have arrived.
"""

from __future__ import annotations

from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD

XMARK_DTD_SOURCE = """
<!ELEMENT site            (regions, categories, catgraph, people, open_auctions, closed_auctions)>

<!ELEMENT regions         (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa          (item*)>
<!ELEMENT asia            (item*)>
<!ELEMENT australia       (item*)>
<!ELEMENT europe          (item*)>
<!ELEMENT namerica        (item*)>
<!ELEMENT samerica        (item*)>

<!ELEMENT item            (item_id, location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ELEMENT item_id         (#PCDATA)>
<!ELEMENT location        (#PCDATA)>
<!ELEMENT quantity        (#PCDATA)>
<!ELEMENT name            (#PCDATA)>
<!ELEMENT payment         (#PCDATA)>
<!ELEMENT description     (text)>
<!ELEMENT text            (#PCDATA)>
<!ELEMENT shipping        (#PCDATA)>
<!ELEMENT incategory      (incategory_category)>
<!ELEMENT incategory_category (#PCDATA)>
<!ELEMENT mailbox         (mail*)>
<!ELEMENT mail            (from, to, date, text)>
<!ELEMENT from            (#PCDATA)>
<!ELEMENT to              (#PCDATA)>
<!ELEMENT date            (#PCDATA)>

<!ELEMENT categories      (category+)>
<!ELEMENT category        (category_id, name, description)>
<!ELEMENT category_id     (#PCDATA)>
<!ELEMENT catgraph        (edge*)>
<!ELEMENT edge            (edge_from, edge_to)>
<!ELEMENT edge_from       (#PCDATA)>
<!ELEMENT edge_to         (#PCDATA)>

<!ELEMENT people          (person*)>
<!ELEMENT person          (person_id, person_income?, name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ELEMENT person_id       (#PCDATA)>
<!ELEMENT person_income   (#PCDATA)>
<!ELEMENT emailaddress    (#PCDATA)>
<!ELEMENT phone           (#PCDATA)>
<!ELEMENT address         (street, city, country, zipcode)>
<!ELEMENT street          (#PCDATA)>
<!ELEMENT city            (#PCDATA)>
<!ELEMENT country         (#PCDATA)>
<!ELEMENT zipcode         (#PCDATA)>
<!ELEMENT homepage        (#PCDATA)>
<!ELEMENT creditcard      (#PCDATA)>
<!ELEMENT profile         (profile_income?, interest*, education?, gender?, business, age?)>
<!ELEMENT profile_income  (#PCDATA)>
<!ELEMENT interest        (interest_category)>
<!ELEMENT interest_category (#PCDATA)>
<!ELEMENT education       (#PCDATA)>
<!ELEMENT gender          (#PCDATA)>
<!ELEMENT business        (#PCDATA)>
<!ELEMENT age             (#PCDATA)>
<!ELEMENT watches         (watch*)>
<!ELEMENT watch           (watch_open_auction)>
<!ELEMENT watch_open_auction (#PCDATA)>

<!ELEMENT open_auctions   (open_auction*)>
<!ELEMENT open_auction    (open_auction_id, initial, reserve?, bidder*, current, itemref, seller, quantity, type, interval)>
<!ELEMENT open_auction_id (#PCDATA)>
<!ELEMENT initial         (#PCDATA)>
<!ELEMENT reserve         (#PCDATA)>
<!ELEMENT bidder          (date, time, personref, increase)>
<!ELEMENT time            (#PCDATA)>
<!ELEMENT personref       (personref_person)>
<!ELEMENT personref_person (#PCDATA)>
<!ELEMENT increase        (#PCDATA)>
<!ELEMENT current         (#PCDATA)>
<!ELEMENT itemref         (itemref_item)>
<!ELEMENT itemref_item    (#PCDATA)>
<!ELEMENT seller          (seller_person)>
<!ELEMENT seller_person   (#PCDATA)>
<!ELEMENT type            (#PCDATA)>
<!ELEMENT interval        (start, end)>
<!ELEMENT start           (#PCDATA)>
<!ELEMENT end             (#PCDATA)>

<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction  (closed_auction_id, seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT closed_auction_id (#PCDATA)>
<!ELEMENT buyer           (buyer_person)>
<!ELEMENT buyer_person    (#PCDATA)>
<!ELEMENT price           (#PCDATA)>
<!ELEMENT annotation      (description)>
"""

_CACHED: DTD = None


def xmark_dtd() -> DTD:
    """The parsed XMark DTD with the virtual root attached to ``site``."""
    global _CACHED
    if _CACHED is None:
        _CACHED = parse_dtd(XMARK_DTD_SOURCE).with_root("site")
    return _CACHED
