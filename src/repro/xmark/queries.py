"""The five benchmark queries of Appendix A.

The queries are reproduced verbatim from the paper (modulo whitespace).  They
are already adapted to the attribute-free schema: attribute accesses use the
``<parent>_<attribute>`` subelements and ``count(...)`` / ``text()`` were
removed by the paper's authors as described in Section 6.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: XMark query 1 -- look up one person by id (fully streamable: no buffering).
QUERY_1 = """
<query1>
{ for $b in /site/people/person
  where $b/person_id = 'person0'
  return
  <result> {$b/name} </result> }
</query1>
"""

#: XMark query 8 -- for every person, the items they bought (value join between
#: people and closed auctions; both sides are buffered, projected).
QUERY_8 = """
<query8>
{ for $p in /site/people/person return
  <item>
    <person> {$p/name} </person>
    <items_bought>
    { for $t in /site/closed_auctions/closed_auction
      where $t/buyer/buyer_person = $p/person_id
      return
      <result> {$t} </result> }
    </items_bought>
  </item> }
</query8>
"""

#: XMark query 11 -- value join with an arithmetic predicate between a person's
#: income and the initial price of open auctions.
QUERY_11 = """
<query11>
{ for $p in /site/people/person return
  <items>
    {$p/name}
    { for $o in /site/open_auctions/open_auction
      where $p/profile/profile_income > (5000 * $o/initial)
      return
      {$o/open_auction_id} }
  </items> }
</query11>
"""

#: XMark query 13 -- names and descriptions of Australian items (streamable).
QUERY_13 = """
<query13>
{ for $i in /site/regions/australia/item return
  <item>
    <name> {$i/name} </name>
    <desc> {$i/description} </desc>
  </item> }
</query13>
"""

#: XMark query 20 (the paper's variant) -- persons without income information
#: (one person buffered at a time).
QUERY_20 = """
<query20>
{ for $p in /site/people/person
  where empty($p/person_income)
  return {$p} }
</query20>
"""

#: All benchmark queries keyed by their Figure-4 label.
BENCHMARK_QUERIES: Dict[str, str] = {
    "Q1": QUERY_1,
    "Q8": QUERY_8,
    "Q11": QUERY_11,
    "Q13": QUERY_13,
    "Q20": QUERY_20,
}

#: Queries the paper reports as running without any buffering.
ZERO_BUFFER_QUERIES: Tuple[str, ...] = ("Q1", "Q13")

#: Queries that perform a value join and therefore buffer projected subtrees.
JOIN_QUERIES: Tuple[str, ...] = ("Q8", "Q11")


def query_source(name: str) -> str:
    """The XQuery⁻ source of a benchmark query (``"Q1"`` ... ``"Q20"``)."""
    try:
        return BENCHMARK_QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark query {name!r}; available: {sorted(BENCHMARK_QUERIES)}"
        ) from None
