"""Flight recorder: an always-on ring of recent pipeline events.

A long-lived push-mode run is a black box between ``feed()`` calls; when
it dies mid-stream the exception says *what* broke but not *where the
engine was*.  The flight recorder keeps a fixed-size ring of the most
recent pipeline events -- batch watermarks (document byte offset, live
buffered bytes, active scope stack), chunk boundaries, governor page
seals/evictions/faults, span transitions of traced runs -- and on any
engine exception the run dumps a ``*.crash.json`` forensic snapshot of
the ring plus the run's statistics, buffer attribution, options, and
chunk boundaries.  ``repro inspect <crash.json>`` pretty-prints it.

Cost discipline: the recorder is always on, so every note must be cheap.
Entries are raw tuples appended to a ``collections.deque(maxlen=...)``
(`deque.append` is atomic under the GIL, so concurrent sessions interleave
without locks or torn entries), and the engine notes once per *batch*
(not per event) at the single choke point all execution modes funnel
through.  The overhead benchmark gates the whole thing at <2% on XMark
Q1/Q13.

Crash dumps are written only when ``REPRO_CRASH_DIR`` is set (or an
explicit directory is passed): the test suite intentionally drives the
engine into errors hundreds of times, and spraying forensic files into
the working directory by default would be hostile.  Dumps are written
atomically (temp file + ``os.replace``), so a crashing *dump* never
leaves a truncated file either.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
from collections import deque
from typing import List, Optional

CRASH_SCHEMA = "repro-crash/1"
RING_CAPACITY = 512

_SEQ = itertools.count(1)
_CRASH_SEQ = itertools.count(1)

# Field names per entry kind, used to render ring tuples as JSON objects.
_KIND_FIELDS = {
    "run-begin": ("mode", "fastpath"),
    "batch": ("events", "offset", "buffered_bytes", "depth", "scope"),
    "chunk": ("size", "total"),
    "seal": ("cost",),
    "evict": ("cost", "encoded"),
    "fault": ("encoded",),
    "span": ("name", "seconds"),
    "run-finish": ("mode", "output_bytes"),
    "feed-begin": ("fastpath", "resume_offset"),
    "doc-boundary": ("index", "offset"),
    "feed-finish": ("documents", "resume_offset"),
    "crash": ("error",),
}


class FlightRecorder:
    """Fixed-size ring of ``(seq, kind, fields)`` tuples."""

    __slots__ = ("_ring",)

    def __init__(self, capacity: int = RING_CAPACITY):
        self._ring = deque(maxlen=capacity)

    # Hot path: one tuple build + one atomic deque append.
    def note(self, kind: str, *fields) -> None:
        self._ring.append((next(_SEQ), kind, fields))

    def note_batch(self, events, offset, buffered_bytes, depth, scope) -> None:
        self._ring.append(
            (next(_SEQ), "batch", (events, offset, buffered_bytes, depth, scope))
        )

    def snapshot(self) -> List[dict]:
        """Materialize the ring oldest-first as JSON-ready dicts."""
        entries = []
        for seq, kind, fields in list(self._ring):
            entry = {"seq": seq, "kind": kind}
            names = _KIND_FIELDS.get(kind)
            if names and len(names) == len(fields):
                entry.update(zip(names, fields))
            else:
                entry["fields"] = list(fields)
            entries.append(entry)
        return entries

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class NullFlightRecorder:
    """No-op stand-in; the overhead benchmark patches it over RECORDER."""

    __slots__ = ()

    def note(self, kind, *fields) -> None:
        return None

    def note_batch(self, events, offset, buffered_bytes, depth, scope) -> None:
        return None

    def snapshot(self) -> List[dict]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: Process-wide recorder. Executors bind it at construction, so patching
#: this name (e.g. with NullFlightRecorder) affects runs started after.
RECORDER = FlightRecorder()


def crash_dir() -> Optional[str]:
    """Directory for crash dumps, or None when dumping is disabled."""
    return os.environ.get("REPRO_CRASH_DIR") or None


def _stats_payload(stats) -> Optional[dict]:
    if stats is None:
        return None
    payload = {}
    for field in dataclasses.fields(stats):
        if field.name == "attribution":
            continue
        value = getattr(stats, field.name)
        if isinstance(value, (int, float, str, bool)) or value is None:
            payload[field.name] = value
    return payload


def _options_payload(options) -> Optional[dict]:
    if options is None:
        return None
    return dataclasses.asdict(options)


def dump_crash(
    error: BaseException,
    *,
    stats=None,
    options=None,
    mode: str = "pull",
    fastpath: bool = False,
    chunk_offsets=None,
    queries=None,
    context=None,
    directory: Optional[str] = None,
) -> Optional[str]:
    """Write a forensic snapshot for ``error``; returns the dump path.

    No-op (returns None) unless a directory is given or REPRO_CRASH_DIR
    is set.  Never raises: forensics must not mask the original error.
    ``context`` carries caller watermarks (a feed's exact document start
    and resume offsets) verbatim into the dump.
    """
    directory = directory or crash_dir()
    if not directory:
        return None
    try:
        RECORDER.note("crash", f"{type(error).__name__}: {error}")
        attribution = getattr(stats, "buffer_attribution", None) or []
        payload = {
            "schema": CRASH_SCHEMA,
            "error": {"type": type(error).__name__, "message": str(error)},
            "mode": mode,
            "fastpath": bool(fastpath),
            "ring": RECORDER.snapshot(),
            "stats": _stats_payload(stats),
            "attribution": attribution,
            "options": _options_payload(options),
            "chunk_offsets": list(chunk_offsets or []),
            "queries": list(queries or []),
            "context": dict(context) if context else None,
        }
        os.makedirs(directory, exist_ok=True)
        name = f"repro-{os.getpid()}-{next(_CRASH_SEQ)}.crash.json"
        path = os.path.join(directory, name)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path
    except Exception:
        return None


def _render_ring(entries: List[dict], limit: int = 40) -> List[str]:
    lines = []
    shown = entries[-limit:]
    if len(entries) > len(shown):
        lines.append(f"  ... {len(entries) - len(shown)} older entries elided ...")
    for entry in shown:
        detail = " ".join(
            f"{key}={entry[key]}"
            for key in entry
            if key not in ("seq", "kind")
        )
        lines.append(f"  #{entry['seq']:<6} {entry['kind']:<10} {detail}".rstrip())
    return lines


def inspect_crash(path: str) -> str:
    """Human-readable rendering of a ``*.crash.json`` dump."""
    with open(path, "r", encoding="utf-8") as handle:
        dump = json.load(handle)
    schema = dump.get("schema", "?")
    if schema != CRASH_SCHEMA:
        raise ValueError(f"unsupported crash dump schema {schema!r} in {path}")
    error = dump.get("error") or {}
    lines = [
        f"crash dump {path}",
        f"schema: {schema}",
        f"error: {error.get('type', '?')}: {error.get('message', '')}",
        f"mode: {dump.get('mode', '?')}  fastpath: {dump.get('fastpath', False)}",
    ]
    queries = dump.get("queries") or []
    if queries:
        lines.append(f"queries: {', '.join(queries)}")
    context = dump.get("context")
    if context:
        rendered = "  ".join(f"{key}={context[key]}" for key in sorted(context))
        lines.append(f"context: {rendered}")
    stats = dump.get("stats")
    if stats:
        lines.append(
            "stats: "
            f"input={stats.get('input_events', 0)}ev/{stats.get('input_bytes', 0)}B "
            f"output={stats.get('output_events', 0)}ev/{stats.get('output_bytes', 0)}B "
            f"peak_buffered={stats.get('peak_buffered_bytes', 0)}B "
            f"spilled={stats.get('spilled_bytes_written', 0)}B"
        )
    offsets = dump.get("chunk_offsets") or []
    if offsets:
        lines.append(
            f"chunk boundaries ({len(offsets)} recorded): "
            + ", ".join(str(offset) for offset in offsets[-12:])
        )
    attribution = dump.get("attribution") or []
    if attribution:
        lines.append("buffer attribution at crash:")
        for row in attribution:
            lines.append(
                f"  {row.get('variable', '?')} (scope {row.get('scope') or '-'}): "
                f"live={row.get('live_bytes', 0)}B "
                f"at_peak={row.get('at_peak_bytes', 0)}B "
                f"spilled={row.get('spilled_bytes', 0)}B"
            )
            lines.append(f"    reason: {row.get('reason', '?')}")
    ring = dump.get("ring") or []
    lines.append(f"flight ring ({len(ring)} entries):")
    if ring:
        lines.extend(_render_ring(ring))
    else:
        lines.append("  (empty)")
    options = dump.get("options")
    if options:
        rendered = ", ".join(f"{key}={options[key]!r}" for key in sorted(options))
        lines.append(f"options: {rendered}")
    return "\n".join(lines)
