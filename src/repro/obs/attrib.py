"""Buffer attribution: every buffered byte gets an owner and a reason.

The paper's whole contribution is buffer *minimization*, yet a run used to
report one opaque ``peak_buffered_bytes`` number.  This module breaks that
number down by **owner** -- the ``(scope, variable)`` a buffer was created
for -- together with the plan-level *reason* the scheduler could not
stream it (the ``on-first`` decision or the deferred gating condition).

Accounting contract (the oracle asserts it after every run, in every
engine mode):

* ``sum(owner.live_bytes) == stats.buffered_bytes_current`` at all times
  (so zero once the run is balanced),
* ``sum(owner.at_peak_bytes) == stats.peak_buffered_bytes`` -- the
  composition of the *global* high-water moment.  Summing per-owner peaks
  would over-count (they can occur at different times); instead
  :meth:`BufferAttribution.snapshot_peak` copies every owner's live bytes
  the instant :meth:`~repro.engine.stats.RunStatistics.record_buffered`
  raises the global byte peak, which makes the attribution *exact* by
  construction,
* ``sum(owner.spilled_bytes) == stats.spilled_bytes_written`` -- spill
  attribution rides on the governor's pages, which carry their owner.

Hot-path discipline: buffers update their owner ledger with plain integer
attribute bumps per append/release (a handful of ops, only on runs that
buffer at all -- streaming-only queries never touch this), and the
peak snapshot is O(number of owners), where the owner count is the number
of buffered variables in the plan (single digits).

Reason strings are derived from the compiled plan objects by duck typing
(``buffer_tree``/``root_marked`` for a scope spec, ``defer``/``copy_var``
for a stream-copy action), so this module stays a leaf -- importable from
:mod:`repro.engine.buffers` without cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import global_registry


def _tree_paths(node, prefix: str = "") -> List[str]:
    """Slash paths of a pruned buffer tree (marked nodes flagged ``*``)."""
    paths: List[str] = []
    children = getattr(node, "children", None) or {}
    for label in sorted(children):
        child = children[label]
        path = f"{prefix}{label}"
        if getattr(child, "marked", False):
            paths.append(path + "*")
        elif not getattr(child, "children", None):
            paths.append(path)
        paths.extend(_tree_paths(child, path + "/"))
    return paths


def describe_reason(source) -> str:
    """The plan-level decision that forced this owner to buffer.

    ``source`` is the compiled plan object the buffer was created for:
    a ``ScopeSpec`` (an ``on-first`` handler body reads the variable out
    of document order) or a deferred ``StreamCopyAction`` (the gating
    condition is only decidable at the element's end event).
    """
    if source is None:
        return "unattributed (buffer created outside the compiled plan)"
    if getattr(source, "defer", False):
        return (
            "deferred stream-copy: the gating condition references the "
            "arriving subtree, so it is only decidable once the element "
            "has been fully read (Definition 3.6 end-of-child execution)"
        )
    if getattr(source, "root_marked", False):
        return (
            "on-first handler emits the whole element out of document "
            "order: the DTD gives no ordering constraint under which it "
            "could stream, so the full subtree is buffered until the "
            "handler's past() condition holds"
        )
    tree = getattr(source, "buffer_tree", None)
    if tree is not None:
        paths = ", ".join(_tree_paths(tree)) or "(root)"
        return (
            f"on-first handler navigates the variable at [{paths}] after "
            "its past() condition holds: those pruned subtrees are "
            "buffered until the handler runs"
        )
    return "buffered by the compiled plan (no pruning information)"


class OwnerLedger:
    """Live/peak/spill byte accounting for one buffer owner."""

    __slots__ = (
        "variable",
        "scope",
        "reason",
        "live_bytes",
        "live_events",
        "peak_bytes",
        "at_peak_bytes",
        "at_peak_events",
        "spilled_bytes",
        "spill_count",
        "total_bytes",
        "total_events",
        "buffers_created",
    )

    def __init__(self, variable: str, scope: str, reason: str):
        self.variable = variable
        self.scope = scope
        self.reason = reason
        self.live_bytes = 0
        self.live_events = 0
        self.peak_bytes = 0
        self.at_peak_bytes = 0
        self.at_peak_events = 0
        self.spilled_bytes = 0
        self.spill_count = 0
        self.total_bytes = 0
        self.total_events = 0
        self.buffers_created = 0

    def to_dict(self) -> dict:
        return {
            "variable": self.variable,
            "scope": self.scope,
            "reason": self.reason,
            "live_bytes": self.live_bytes,
            "live_events": self.live_events,
            "peak_bytes": self.peak_bytes,
            "at_peak_bytes": self.at_peak_bytes,
            "at_peak_events": self.at_peak_events,
            "spilled_bytes": self.spilled_bytes,
            "spill_count": self.spill_count,
            "total_bytes": self.total_bytes,
            "total_events": self.total_events,
            "buffers_created": self.buffers_created,
        }


class BufferAttribution:
    """Per-owner ledger of one run's buffered bytes.

    Created by the run's :class:`~repro.engine.buffers.BufferManager` and
    attached to its :class:`~repro.engine.stats.RunStatistics`; buffers
    bump their owner's ledger directly (no dict lookup per event), and
    ``record_buffered`` calls :meth:`snapshot_peak` whenever the global
    byte peak moves.
    """

    __slots__ = ("owners",)

    def __init__(self):
        self.owners: Dict[str, OwnerLedger] = {}

    def ledger(self, variable: str, source=None, scope: str = "") -> OwnerLedger:
        """Get-or-create the ledger for ``variable``.

        The reason (and per-owner registry gauges) are derived only on
        first creation; later calls are one dict lookup.
        """
        owner = self.owners.get(variable)
        if owner is None:
            owner = OwnerLedger(variable, scope, describe_reason(source))
            self.owners[variable] = owner
            _register_owner_gauges(owner)
        return owner

    def snapshot_peak(self) -> None:
        """Record the composition of a new global byte high-water mark."""
        for owner in self.owners.values():
            owner.at_peak_bytes = owner.live_bytes
            owner.at_peak_events = owner.live_events

    # -------------------------------------------------------------- totals

    def total_live_bytes(self) -> int:
        return sum(owner.live_bytes for owner in self.owners.values())

    def total_at_peak_bytes(self) -> int:
        return sum(owner.at_peak_bytes for owner in self.owners.values())

    def total_spilled_bytes(self) -> int:
        return sum(owner.spilled_bytes for owner in self.owners.values())

    def rows(self) -> List[dict]:
        """JSON-ready per-owner rows, largest share of the peak first."""
        owners = sorted(
            self.owners.values(), key=lambda o: (-o.at_peak_bytes, o.variable)
        )
        return [owner.to_dict() for owner in owners]


def _gauge_slug(variable: str) -> str:
    return variable.lstrip("$") or "root"


def _register_owner_gauges(owner: OwnerLedger) -> None:
    """Expose one owner's live/peak/spilled bytes as registry gauges.

    Gauge names are stable per variable; a newer run's ledger rebinds the
    callback (idempotent registration), so ``/metrics`` always reflects
    the most recent run that buffered under that variable.
    """
    registry = global_registry()
    slug = _gauge_slug(owner.variable)
    registry.gauge(
        f"repro.buffer.owner.{slug}.live_bytes",
        f"Live buffered bytes owned by {owner.variable}",
        fn=lambda o=owner: o.live_bytes,
    )
    registry.gauge(
        f"repro.buffer.owner.{slug}.peak_bytes",
        f"Peak buffered bytes owned by {owner.variable}",
        fn=lambda o=owner: o.peak_bytes,
    )
    registry.gauge(
        f"repro.buffer.owner.{slug}.spilled_bytes",
        f"Spilled (encoded) bytes owned by {owner.variable}",
        fn=lambda o=owner: o.spilled_bytes,
    )


def format_attribution(stats) -> str:
    """The ``repro run --explain-buffers`` report.

    One table row per owner plus the owner's blocking reason underneath;
    the footer restates the exactness identity so a reader can verify the
    per-owner bytes against the headline figure at a glance.
    """
    rows = getattr(stats, "buffer_attribution", None) or []
    if not rows:
        return (
            "no buffers were allocated: every handler streamed "
            f"(peak_buffered = {stats.peak_buffered_bytes}B)"
        )
    headers = ("owner", "scope", "bytes@peak", "events@peak", "own peak [B]", "spilled [B]")
    cells = [
        (
            row["variable"],
            row["scope"] or "-",
            str(row["at_peak_bytes"]),
            str(row["at_peak_events"]),
            str(row["peak_bytes"]),
            str(row["spilled_bytes"]),
        )
        for row in rows
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        for col in range(len(headers))
    ]

    def render(row) -> str:
        rest = (cell.rjust(widths[i]) for i, cell in enumerate(row) if i > 0)
        return "  ".join([row[0].ljust(widths[0]), *rest]).rstrip()

    lines = [render(headers), "  ".join("-" * width for width in widths)]
    for row, raw in zip(cells, rows):
        lines.append(render(row))
        lines.append(f"    reason: {raw['reason']}")
    total = sum(row["at_peak_bytes"] for row in rows)
    lines.append(
        f"peak_buffered = {stats.peak_buffered_bytes}B; "
        f"attributed at peak = {total}B (exact)"
    )
    return "\n".join(lines)
