"""Exporters: JSON-lines trace dumps and Prometheus-style text exposition.

Three consumers, three formats:

* :func:`trace_to_jsonl` / :func:`append_jsonl` -- one JSON object per
  line; the first line is the run header (stage table, wall time), the
  remaining lines are span records.  ``REPRO_OBS_JSON=path`` makes the
  engine append every finished run here.
* :func:`prometheus_text` -- the classic ``# HELP``/``# TYPE`` text
  exposition over a :class:`~repro.obs.metrics.MetricsRegistry`, ready
  for the future subscription service to serve on a scrape endpoint.
* The human CLI table lives on the report itself
  (:meth:`~repro.obs.observer.TraceReport.table`).
"""

from __future__ import annotations

import json
import os
from typing import List

from .metrics import MetricsRegistry


def trace_to_jsonl(report, run: int = 0) -> str:
    """Serialize one run's trace as JSON-lines (header line, then spans)."""
    header = {
        "record": "run",
        "run": run,
        "wall_seconds": report.wall_seconds,
        "mode": report.mode,
        "fastpath": report.fastpath,
        "stages": [stage.to_dict() for stage in report.stages],
    }
    lines = [json.dumps(header, sort_keys=True)]
    for span in report.spans:
        row = span.to_dict()
        row["record"] = "span"
        row["run"] = run
        lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + "\n"


def append_jsonl(path: str, report, run: int = 0) -> None:
    """Append one run's JSON-lines trace to ``path`` (the env-var sink).

    The append is atomic (write-temp-then-rename): a run crashing -- or the
    process dying -- mid-dump can never leave ``path`` truncated inside a
    JSON line.  Readers either see the file before the append or after it,
    whole lines only.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = handle.read()
    except FileNotFoundError:
        existing = ""
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(existing)
        handle.write(trace_to_jsonl(report, run=run))
    os.replace(tmp, path)


def _sanitize(name: str) -> str:
    """Metric names use dots internally; Prometheus wants underscores."""
    return name.replace(".", "_").replace("-", "_")


def escape_label_value(value) -> str:
    """Escape one label value per the Prometheus text exposition format:
    backslash, double-quote and newline must be backslash-escaped inside
    the ``label="..."`` quotes."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (a raw newline would start
    a bogus new exposition line)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in registry.collect():
        name = _sanitize(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if instrument.kind == "histogram":
            for bound, cumulative in instrument.cumulative():
                le = escape_label_value(_format_value(bound))
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {instrument.count}')
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
        else:
            lines.append(f"{name} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"
