"""The span tracer: monotonic-clock timing with parent/child structure.

A :class:`Tracer` records *spans* -- named, nested time intervals with
optional integer counters -- into a flat append-only list of
:class:`SpanRecord` rows.  ``tracer.span("tokenize")`` is a context
manager; spans opened while another span is active become its children
(the record keeps the parent's index), so the finished list is a
serialized tree that the exporters (:mod:`repro.obs.export`) and the
well-formedness tests can reconstruct without the tracer keeping any
linked structure alive.

Overhead discipline -- the whole point of this module:

* the **enabled** tracer costs two ``perf_counter`` calls plus one list
  append per span; counters are plain dict adds.  Spans are meant to wrap
  *batches and runs*, never individual events.
* the **disabled** path is the :data:`NULL_TRACER` singleton: its
  ``enabled`` attribute is ``False`` and its ``span`` returns one shared
  no-op context manager.  Instrumentation points guard their work with a
  single attribute lookup (``if observer.enabled:``), so a run without
  tracing executes the exact same per-batch instructions as before the
  observability subsystem existed.  ``benchmarks/bench_obs_overhead.py``
  holds this claim to <2%.

The clock is injectable (``Tracer(clock=...)``) so the exporter golden
tests can produce deterministic timings.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from . import recorder as _recorder


class SpanRecord:
    """One finished (or still-open) span: an interval in the span tree.

    ``parent`` is the index of the enclosing span in the owning tracer's
    ``records`` list, ``-1`` for roots.  ``end`` stays ``None`` while the
    span is open; a well-formed trace has no open spans once the run is
    over.
    """

    __slots__ = ("name", "index", "parent", "start", "end", "counters")

    def __init__(self, name: str, index: int, parent: int, start: float):
        self.name = name
        self.index = index
        self.parent = parent
        self.start = start
        self.end: Optional[float] = None
        self.counters: Dict[str, int] = {}

    @property
    def seconds(self) -> float:
        """The span's duration (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def add(self, counter: str, value: int = 1) -> None:
        """Bump one of the span's named counters."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def to_dict(self) -> dict:
        """A JSON-ready row (used by the JSON-lines exporter)."""
        row = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
        }
        if self.counters:
            row["counters"] = dict(self.counters)
        return row


class _ActiveSpan:
    """Context manager binding one open :class:`SpanRecord` to its tracer."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def add(self, counter: str, value: int = 1) -> None:
        self.record.add(counter, value)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._exit(self.record)


class Tracer:
    """Records a tree of timed spans for one run."""

    __slots__ = ("records", "_stack", "_clock")
    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        #: Flat span list in *start* order; parents precede their children.
        self.records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._clock = clock

    def span(self, name: str) -> _ActiveSpan:
        """Open a child span of the currently-active span (or a root)."""
        parent = self._stack[-1].index if self._stack else -1
        record = SpanRecord(name, len(self.records), parent, self._clock())
        self.records.append(record)
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def _exit(self, record: SpanRecord) -> None:
        if not self._stack or self._stack[-1] is not record:
            # Crossing spans cannot arise from context-manager use; failing
            # loudly here is what the well-formedness tests lean on.
            raise RuntimeError(
                f"span {record.name!r} exited out of order "
                f"(open: {[span.name for span in self._stack]})"
            )
        self._stack.pop()
        record.end = self._clock()
        # Span transitions feed the always-on flight recorder ring (traced
        # runs only -- the NullTracer never reaches this method).
        _recorder.RECORDER.note("span", record.name, record.end - record.start)

    @property
    def open_spans(self) -> int:
        """Number of spans entered but not yet exited."""
        return len(self._stack)

    def add(self, counter: str, value: int = 1) -> None:
        """Bump a counter on the innermost open span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].add(counter, value)


class _NullSpan:
    """The shared do-nothing span of the disabled tracer."""

    __slots__ = ()

    def add(self, counter: str, value: int = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: one attribute lookup decides, everything else no-ops."""

    __slots__ = ()
    enabled = False
    records: tuple = ()
    open_spans = 0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add(self, counter: str, value: int = 1) -> None:
        pass


#: The process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


def validate_span_tree(records) -> List[str]:
    """Structural well-formedness violations of a finished span list.

    Returns human-readable problem descriptions (empty = well-formed):
    every span must have an exit (``end``), children must nest strictly
    inside their parent's interval, and parents must precede children.
    """
    problems: List[str] = []
    for record in records:
        if record.end is None:
            problems.append(f"span {record.index} ({record.name!r}) was never exited")
            continue
        if record.end < record.start:
            problems.append(f"span {record.index} ({record.name!r}) ends before it starts")
        if record.parent >= 0:
            if record.parent >= record.index:
                problems.append(
                    f"span {record.index} ({record.name!r}) precedes its parent {record.parent}"
                )
                continue
            parent = records[record.parent]
            if parent.end is not None and (
                record.start < parent.start or record.end > parent.end
            ):
                problems.append(
                    f"span {record.index} ({record.name!r}) crosses its parent "
                    f"{parent.index} ({parent.name!r})"
                )
    return problems
