"""Live run inspection: a stdlib-only background HTTP endpoint.

``repro run/multirun --serve-metrics PORT`` (or
``ExecutionOptions(serve_metrics=...)``) starts a daemon-thread HTTP
server bound to ``127.0.0.1`` that exposes:

* ``/metrics`` -- the global :class:`~repro.obs.metrics.MetricsRegistry`
  rendered by :func:`~repro.obs.export.prometheus_text`,
* ``/progress`` -- JSON watermarks for every open push-mode
  :class:`~repro.engine.engine.RunHandle`: bytes fed, document offset,
  events emitted, per-stage throughput, per-owner buffer bytes.

Design notes:

* The progress registry is module-level so that *serving* and *running*
  stay decoupled: every RunHandle registers a zero-cost snapshot callback
  on open and removes it on finish/close, whether or not a server is up.
  The server only calls the callbacks when someone actually GETs
  ``/progress`` -- a run being watched does not run different code, which
  is what lets the oracle assert byte-identical output under inspection.
* Servers are cached per *requested* port, so repeated runs (and the
  conformance oracle's per-case checks) reuse one listener instead of
  leaking sockets.  Port 0 maps to one shared ephemeral server whose real
  port is exposed as ``MetricsServer.port``.
* ``http.server`` is imported lazily inside :func:`ensure_server` so the
  engine can import this module unconditionally without paying for the
  HTTP stack on runs that never serve.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Callable, Dict, Optional

_PROGRESS_LOCK = threading.Lock()
_PROGRESS: Dict[int, Callable[[], dict]] = {}
_PROGRESS_KEYS = itertools.count(1)

_SERVER_LOCK = threading.Lock()
_SERVERS: Dict[int, "MetricsServer"] = {}


def register_run(snapshot: Callable[[], dict]) -> int:
    """Expose an open run on ``/progress``; returns its registry key."""
    key = next(_PROGRESS_KEYS)
    with _PROGRESS_LOCK:
        _PROGRESS[key] = snapshot
    return key


def unregister_run(key: Optional[int]) -> None:
    if key is None:
        return
    with _PROGRESS_LOCK:
        _PROGRESS.pop(key, None)


def progress_snapshot() -> dict:
    """Watermarks for every open run (also usable without a server)."""
    with _PROGRESS_LOCK:
        items = sorted(_PROGRESS.items())
    runs = []
    for key, snapshot in items:
        try:
            entry = snapshot()
        except Exception:
            continue
        entry.setdefault("run", key)
        runs.append(entry)
    return {"open_runs": len(runs), "runs": runs}


class MetricsServer:
    """Background HTTP server for ``/metrics`` and ``/progress``."""

    def __init__(self, port: int):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from .export import prometheus_text
        from .metrics import global_registry

        class _Handler(BaseHTTPRequestHandler):
            server_version = "repro-obs/1"

            def do_GET(self):  # noqa: N802 - http.server API
                if self.path == "/metrics":
                    body = prometheus_text(global_registry()).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path == "/progress":
                    body = json.dumps(progress_snapshot(), sort_keys=True).encode(
                        "utf-8"
                    )
                    ctype = "application/json"
                else:
                    body = b"repro-obs: unknown path; try /metrics or /progress\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002 - http.server API
                return None

        self._http = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._http.daemon_threads = True
        self.port = self._http.server_address[1]
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name=f"repro-obs-serve-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()


def ensure_server(port: int) -> MetricsServer:
    """Start (or reuse) the metrics server for ``port``.

    Cached by the *requested* port: asking for port 0 twice returns the
    same ephemeral server rather than binding a new socket per run.
    """
    with _SERVER_LOCK:
        server = _SERVERS.get(port)
        if server is None:
            server = MetricsServer(port)
            _SERVERS[port] = server
        return server


def shutdown_servers() -> None:
    """Stop every cached server (test teardown helper)."""
    with _SERVER_LOCK:
        servers = list(_SERVERS.values())
        _SERVERS.clear()
    for server in servers:
        try:
            server.close()
        except Exception:
            pass
