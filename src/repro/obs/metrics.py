"""The metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` is a flat namespace of *instruments*:

* :class:`Counter` -- a monotonically increasing integer (``inc``),
* :class:`Gauge` -- a point-in-time value, either set directly (``set``)
  or backed by a zero-argument callback so the registry can expose live
  engine state (a run's current buffered bytes, a governor's residency)
  without the hot path ever touching the registry,
* :class:`Histogram` -- explicit-bucket distribution (cumulative bucket
  counts plus sum/count), the Prometheus classic-histogram shape; used
  for per-run latencies.

Layers register once (module import or object construction) and mutate
their instruments directly -- instrument handles are plain attribute
bumps, there is no name lookup on any mutation path.  Registration is
idempotent per name (``counter("x")`` twice returns the same instrument),
so module-level layers and tests can share the process-wide
:func:`global_registry` without coordination.

Exporters (:mod:`repro.obs.export`) consume :meth:`MetricsRegistry.collect`;
``snapshot()`` gives tests and telemetry a plain dict.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): micro-runs through minutes-long sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    2.5,
    10.0,
    60.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value, set directly or read from a callback."""

    __slots__ = ("name", "help", "_value", "_fn")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self._value = 0
        self._fn = fn

    def set(self, value) -> None:
        self._value = value

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Back the gauge by a live callback (``None`` reverts to ``set``)."""
        self._fn = fn

    @property
    def value(self):
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """Explicit-bucket histogram (cumulative counts, Prometheus-shaped)."""

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` excluded.

        ``observe`` already bumps *every* bucket whose bound admits the
        value, so the stored counts are cumulative as-is (``le``
        semantics); summing them again would double-count.
        """
        return list(zip(self.buckets, self.bucket_counts))


class MetricsRegistry:
    """A named set of instruments; registration locked, mutation lock-free."""

    def __init__(self):
        self._instruments: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    # ---------------------------------------------------------- registration

    def _register(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is not None:
                if not isinstance(instrument, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as {instrument.kind}"
                    )
                return instrument
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create the counter ``name``."""
        return self._register(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get-or-create the gauge ``name`` (optionally callback-backed)."""
        gauge = self._register(name, Gauge, lambda: Gauge(name, help, fn))
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Get-or-create the histogram ``name`` with explicit buckets."""
        return self._register(name, Histogram, lambda: Histogram(name, help, buckets))

    def unregister(self, name: str) -> None:
        """Drop one instrument (per-run gauges detach themselves here)."""
        with self._lock:
            self._instruments.pop(name, None)

    # -------------------------------------------------------------- reading

    def collect(self) -> List[object]:
        """Every instrument, sorted by name (the exporters' input)."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """Plain ``name -> value`` mapping (histograms: ``{count, sum}``)."""
        result = {}
        for instrument in self.collect():
            if instrument.kind == "histogram":
                result[instrument.name] = {"count": instrument.count, "sum": instrument.sum}
            else:
                result[instrument.name] = instrument.value
        return result

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


#: The process-wide registry every engine layer registers into.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The always-on process-wide registry (engine, storage, session, ...)."""
    return _GLOBAL
