"""Per-run observability state: the :class:`Observer` and its report.

One :class:`Observer` flows through a whole run -- engine setup hands it
to the pipeline, the executor and (in push mode) the feed -- so every
layer charges time and volume to the same place.  It owns:

* a :class:`~repro.obs.tracer.Tracer` for the span tree,
* a ``stages`` dict of :class:`StageStats` -- the per-stage aggregate
  (seconds, batches, events, bytes) that the CLI table and the JSON
  exporter print.  Stage timing is charged by the *instrumented loops*
  (``pipeline._staged_traced``, the executor's traced batch loop), which
  only exist when the observer is enabled: a disabled run executes the
  byte-for-byte pre-instrumentation code path, guarded by a single
  ``observer.enabled`` attribute lookup at setup time.

Byte columns are backfilled at :meth:`Observer.finish` from the run's
``RunStatistics``: the tokenize/coalesce/project stages all consume the
document (``input_bytes``), execute produces ``output_bytes``.  Charging
them per-batch instead would put additions on the hot path for numbers
the statistics object already tracks.

``trace=None`` in :class:`~repro.core.options.ExecutionOptions` defers to
the ``REPRO_TRACE`` environment variable (mirroring ``REPRO_FASTPATH``);
setting ``REPRO_OBS_JSON`` to a path implies tracing and appends a
JSON-lines dump of every finished run there.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from .tracer import NULL_TRACER, Tracer

#: Canonical stage ordering for reports (classic then fastpath names).
STAGE_ORDER = ("tokenize", "coalesce", "project", "scan", "materialize", "execute")


def use_tracing(requested: Optional[bool]) -> bool:
    """Resolve an ``ExecutionOptions.trace`` request against the environment.

    ``REPRO_TRACE=1``/``0`` overrides the option (mirroring the fastpath
    toggle); an explicit ``True``/``False`` option decides next; a set
    ``REPRO_OBS_JSON`` implies tracing for undecided (``None``) runs so
    the dump has spans to carry.
    """
    env = os.environ.get("REPRO_TRACE")
    if env is not None and env != "":
        return env != "0"
    if requested is not None:
        return bool(requested)
    return bool(os.environ.get("REPRO_OBS_JSON"))


class StageStats:
    """Aggregate cost of one pipeline stage across a whole run."""

    __slots__ = ("name", "seconds", "batches", "events", "bytes")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.batches = 0
        self.events = 0
        self.bytes = 0

    def charge(self, seconds: float, events: int = 0) -> None:
        self.seconds += seconds
        self.batches += 1
        self.events += events

    def to_dict(self) -> dict:
        return {
            "stage": self.name,
            "seconds": self.seconds,
            "batches": self.batches,
            "events": self.events,
            "bytes": self.bytes,
        }


class Observer:
    """Enabled observability state for one run (tracer + stage aggregates)."""

    __slots__ = ("tracer", "stages", "mode", "fastpath")
    enabled = True

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.stages: Dict[str, StageStats] = {}
        self.mode = "pull"
        self.fastpath = False

    def stage(self, name: str) -> StageStats:
        """Get-or-create the aggregate row for stage ``name``."""
        stats = self.stages.get(name)
        if stats is None:
            stats = StageStats(name)
            self.stages[name] = stats
        return stats

    def clock(self) -> float:
        """The tracer's clock, so stage charges and spans agree."""
        return self.tracer._clock()

    def finish(self, stats) -> "TraceReport":
        """Seal the run: backfill byte columns and build the report.

        ``stats`` is the run's ``RunStatistics``.  The scan-side stages
        (tokenize/coalesce/project and the fastpath scan/materialize)
        each process the document's input bytes; execute accounts for the
        produced output bytes.
        """
        for name, stage in self.stages.items():
            stage.bytes = stats.output_bytes if name == "execute" else stats.input_bytes
        return TraceReport(
            stages=[self.stages[name] for name in STAGE_ORDER if name in self.stages],
            spans=list(self.tracer.records),
            wall_seconds=stats.elapsed_seconds,
            mode=self.mode,
            fastpath=self.fastpath,
        )


class NullObserver:
    """The disabled observer: one shared instance, one attribute lookup."""

    __slots__ = ()
    enabled = False
    tracer = NULL_TRACER
    stages: dict = {}
    mode = "pull"
    fastpath = False

    def stage(self, name: str) -> StageStats:
        return StageStats(name)

    def finish(self, stats) -> None:
        return None


NULL_OBSERVER = NullObserver()


class TraceReport:
    """The per-run trace deliverable: stage breakdown plus the span tree."""

    __slots__ = ("stages", "spans", "wall_seconds", "mode", "fastpath")

    def __init__(
        self,
        stages: List[StageStats],
        spans: list,
        wall_seconds: float,
        mode: str = "pull",
        fastpath: bool = False,
    ):
        self.stages = stages
        self.spans = spans
        self.wall_seconds = wall_seconds
        self.mode = mode
        self.fastpath = fastpath

    @property
    def stage_seconds(self) -> float:
        """Sum of per-stage time; close to ``wall_seconds`` by design."""
        return sum(stage.seconds for stage in self.stages)

    def table(self) -> str:
        """The human per-stage breakdown printed by ``repro run --trace``."""
        headers = ("stage", "seconds", "% wall", "batches", "events", "bytes")
        rows = []
        wall = self.wall_seconds or 0.0
        for stage in self.stages:
            share = (100.0 * stage.seconds / wall) if wall > 0 else 0.0
            rows.append(
                (
                    stage.name,
                    f"{stage.seconds:.6f}",
                    f"{share:.1f}",
                    f"{stage.batches:,}",
                    f"{stage.events:,}",
                    f"{stage.bytes:,}",
                )
            )
        rows.append(
            (
                "total",
                f"{self.stage_seconds:.6f}",
                f"{(100.0 * self.stage_seconds / wall) if wall > 0 else 0.0:.1f}",
                "",
                "",
                "",
            )
        )
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            for col in range(len(headers))
        ]
        lines = [
            "  ".join(
                headers[col].ljust(widths[col]) if col == 0 else headers[col].rjust(widths[col])
                for col in range(len(headers))
            ),
            "  ".join("-" * widths[col] for col in range(len(headers))),
        ]
        for row in rows:
            lines.append(
                "  ".join(
                    row[col].ljust(widths[col]) if col == 0 else row[col].rjust(widths[col])
                    for col in range(len(headers))
                )
            )
        lines.append(f"wall: {wall:.6f}s  mode: {self.mode}  fastpath: {self.fastpath}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "mode": self.mode,
            "fastpath": self.fastpath,
            "stages": [stage.to_dict() for stage in self.stages],
            "spans": [span.to_dict() for span in self.spans],
        }
