"""Observability: span tracing, a metrics registry, and exporters.

Zero-dependency measurement substrate for the engine (ISSUE 7).  Three
pieces compose:

* :mod:`repro.obs.tracer` -- per-run span trees with monotonic timings
  and a one-attribute-lookup disabled path,
* :mod:`repro.obs.metrics` -- the process-wide registry of counters,
  gauges and explicit-bucket histograms every layer registers into,
* :mod:`repro.obs.export` -- JSON-lines trace dumps, Prometheus-style
  text exposition, and (on the report object) the human CLI table.

:mod:`repro.obs.runtime` keeps always-on totals over every finished run;
per-run tracing is requested with ``ExecutionOptions(trace=True)``, the
``REPRO_TRACE`` environment variable, or ``repro run --trace``.
"""

from .export import append_jsonl, prometheus_text, trace_to_jsonl
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .observer import NULL_OBSERVER, Observer, StageStats, TraceReport, use_tracing
from .runtime import record_run
from .tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer, validate_span_tree

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_TRACER",
    "NullTracer",
    "Observer",
    "SpanRecord",
    "StageStats",
    "TraceReport",
    "Tracer",
    "append_jsonl",
    "global_registry",
    "prometheus_text",
    "record_run",
    "trace_to_jsonl",
    "use_tracing",
    "validate_span_tree",
]
