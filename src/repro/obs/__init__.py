"""Observability: span tracing, a metrics registry, and exporters.

Zero-dependency measurement substrate for the engine (ISSUE 7).  Three
pieces compose:

* :mod:`repro.obs.tracer` -- per-run span trees with monotonic timings
  and a one-attribute-lookup disabled path,
* :mod:`repro.obs.metrics` -- the process-wide registry of counters,
  gauges and explicit-bucket histograms every layer registers into,
* :mod:`repro.obs.export` -- JSON-lines trace dumps, Prometheus-style
  text exposition, and (on the report object) the human CLI table.

:mod:`repro.obs.runtime` keeps always-on totals over every finished run;
per-run tracing is requested with ``ExecutionOptions(trace=True)``, the
``REPRO_TRACE`` environment variable, or ``repro run --trace``.

ISSUE 8 adds the diagnostics layer on top of that substrate:

* :mod:`repro.obs.attrib` -- per-owner buffer attribution: every live,
  peak and spilled byte is charged to a ``(scope, variable)`` owner with
  the plan-level reason it is buffered (``repro run --explain-buffers``),
* :mod:`repro.obs.recorder` -- the always-on flight-recorder ring and the
  ``*.crash.json`` forensic dumps (``repro inspect``),
* :mod:`repro.obs.serve` -- the ``/metrics`` + ``/progress`` live
  inspection HTTP endpoint (``--serve-metrics``,
  ``ExecutionOptions(serve_metrics=...)``).
"""

from .attrib import BufferAttribution, OwnerLedger, describe_reason, format_attribution
from .export import append_jsonl, escape_label_value, prometheus_text, trace_to_jsonl
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .observer import NULL_OBSERVER, Observer, StageStats, TraceReport, use_tracing
from .recorder import (
    CRASH_SCHEMA,
    RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    dump_crash,
    inspect_crash,
)
from .runtime import record_run
from .serve import MetricsServer, ensure_server, progress_snapshot, shutdown_servers
from .tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer, validate_span_tree

__all__ = [
    "BufferAttribution",
    "CRASH_SCHEMA",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_OBSERVER",
    "NULL_TRACER",
    "NullFlightRecorder",
    "NullTracer",
    "Observer",
    "OwnerLedger",
    "RECORDER",
    "SpanRecord",
    "StageStats",
    "TraceReport",
    "Tracer",
    "append_jsonl",
    "describe_reason",
    "dump_crash",
    "ensure_server",
    "escape_label_value",
    "format_attribution",
    "global_registry",
    "inspect_crash",
    "progress_snapshot",
    "prometheus_text",
    "record_run",
    "shutdown_servers",
    "trace_to_jsonl",
    "use_tracing",
    "validate_span_tree",
]
