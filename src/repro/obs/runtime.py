"""Always-on run telemetry: process-wide totals over every engine run.

Tracing is opt-in and per-run; *telemetry* is neither.  Every run --
traced or not, classic or fastpath, pull or push -- folds its finished
``RunStatistics`` into the global registry exactly once, from the
engine's finish path.  The cost is a handful of integer adds per *run*
(not per event or batch), which is why this can stay always-on.

The instruments registered here are the engine-layer slice of the
registry; the storage governor, the session plan cache, the multiquery
engine and the conformance oracle register their own counters at their
own layer.  Everything meets in :func:`repro.obs.metrics.global_registry`
and comes out through :func:`repro.obs.export.prometheus_text`.
"""

from __future__ import annotations

from .metrics import global_registry

_registry = global_registry()

RUNS_TOTAL = _registry.counter("repro.runs.total", "Finished engine runs")
RUNS_TRACED = _registry.counter("repro.runs.traced", "Runs executed with tracing on")
RUNS_FASTPATH = _registry.counter("repro.runs.fastpath", "Runs served by the bytes-native fast path")
RUNS_PUSH = _registry.counter("repro.runs.push", "Runs driven through push-mode feeds")
INPUT_EVENTS = _registry.counter("repro.run.input_events.total", "Parser events consumed")
INPUT_BYTES = _registry.counter("repro.run.input_bytes.total", "Document bytes consumed")
OUTPUT_EVENTS = _registry.counter("repro.run.output_events.total", "Events emitted to sinks")
OUTPUT_BYTES = _registry.counter("repro.run.output_bytes.total", "Serialized bytes emitted to sinks")
SPILL_COUNT = _registry.counter("repro.run.spills.total", "Buffer pages spilled by the governor")
SPILL_BYTES = _registry.counter("repro.run.spill_bytes.total", "Encoded bytes written to spill storage")
PAGE_FAULTS = _registry.counter("repro.run.page_faults.total", "Spilled pages read back")
RUN_SECONDS = _registry.histogram("repro.run.seconds", "Wall time per run (seconds)")
FEEDS_TOTAL = _registry.counter("repro.feeds.total", "Finished continuous feeds")
FEED_DOCUMENTS = _registry.counter(
    "repro.feed.documents.total", "Documents completed by continuous feeds"
)
FEED_HEARTBEATS = _registry.counter(
    "repro.feed.heartbeats.total", "Heartbeat callbacks fired by continuous feeds"
)


def record_run(stats, *, traced: bool = False, fastpath: bool = False, push: bool = False) -> None:
    """Fold one finished run's statistics into the global totals."""
    RUNS_TOTAL.inc()
    if traced:
        RUNS_TRACED.inc()
    if fastpath:
        RUNS_FASTPATH.inc()
    if push:
        RUNS_PUSH.inc()
    INPUT_EVENTS.inc(stats.input_events)
    INPUT_BYTES.inc(stats.input_bytes)
    OUTPUT_EVENTS.inc(stats.output_events)
    OUTPUT_BYTES.inc(stats.output_bytes)
    SPILL_COUNT.inc(stats.spill_count)
    SPILL_BYTES.inc(stats.spilled_bytes_written)
    PAGE_FAULTS.inc(stats.page_faults)
    RUN_SECONDS.observe(stats.elapsed_seconds)


def record_feed_document() -> None:
    """Count one completed feed document (its run is counted by record_run)."""
    FEED_DOCUMENTS.inc()


def record_feed_finished() -> None:
    """Count one cleanly-finished continuous feed."""
    FEEDS_TOTAL.inc()


def record_feed_heartbeat() -> None:
    """Count one fired feed heartbeat."""
    FEED_HEARTBEATS.inc()
