"""Baseline engines the FluX engine is compared against.

The paper compares its prototype against Galax (a full main-memory XQuery
engine, run with path projection enabled) and against an anonymous commercial
engine.  Neither can be shipped here, so two baselines that reproduce the two
memory regimes stand in for them:

* :class:`~repro.baselines.naive.NaiveDomEngine` -- materialise the whole
  document as a tree, then evaluate the query in memory.  Memory grows with
  the document; this is the "conventional main-memory engine" regime.
* :class:`~repro.baselines.projection.ProjectionDomEngine` -- materialise only
  the paths the query mentions (Marian & Siméon-style projection, reference
  [14] of the paper), then evaluate in memory.  Memory grows with the
  *projected* document; this is the strongest non-schema-aware competitor.

Both reuse the reference XQuery⁻ semantics, so all three engines must agree
on every query result -- which the integration tests assert.
"""

from repro.baselines.common import BaselineResult
from repro.baselines.naive import NaiveDomEngine
from repro.baselines.projection import ProjectionDomEngine

__all__ = ["BaselineResult", "NaiveDomEngine", "ProjectionDomEngine"]
