"""Projection baseline (Marian & Siméon-style, reference [14] of the paper).

The projection baseline is the strongest competitor that does *not* use
schema information: before materialising the document it computes the set of
paths the query mentions and keeps only nodes on (or below) those paths.
Memory therefore grows with the *projected* document.  Unlike the FluX
engine it cannot exploit order constraints, so even fully streamable queries
still buffer their projected data.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.baselines.common import BaselineResult, tree_cost
from repro.xmlstream.events import Characters, EndElement, Event, StartElement
from repro.xmlstream.parser import DocumentSource, iter_events
from repro.xmlstream.tree import XMLNode
from repro.xquery.analysis import binding_environment, path_references
from repro.xquery.ast import ROOT_VARIABLE, XQExpr
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_query

Path = Tuple[str, ...]


def projection_paths(query: XQExpr, *, root_var: str = ROOT_VARIABLE) -> Set[Path]:
    """Absolute paths (from the virtual root) the query can possibly touch.

    Every path reference is resolved through the chain of for-loop bindings
    back to ``$ROOT``.  Paths rooted at variables that cannot be resolved
    (which does not happen for well-formed XQuery⁻ queries) are ignored.
    """
    all_paths, _content = projection_path_sets(query, root_var=root_var)
    return all_paths


def projection_content_paths(query: XQExpr, *, root_var: str = ROOT_VARIABLE) -> Set[Path]:
    """Absolute paths whose *content* (whole subtree / text) the query reads."""
    _all, content = projection_path_sets(query, root_var=root_var)
    return content


def projection_path_sets(query: XQExpr, *, root_var: str = ROOT_VARIABLE) -> Tuple[Set[Path], Set[Path]]:
    """Both path sets used by the projecting builder.

    The first set contains every referenced path (including pure navigation
    spines of for-loops): nodes *on* these paths are kept.  The second set
    contains the paths whose content is actually read (outputs and condition
    operands): nodes *below* these paths are kept as well.
    """
    normalized = normalize(query)
    env = binding_environment(normalized, root_var)
    all_paths: Set[Path] = set()
    content_paths: Set[Path] = set()
    for var, path, kind in path_references(normalized):
        absolute = _absolute_path(var, path, env, root_var)
        if absolute is None:
            continue
        all_paths.add(absolute)
        if kind in ("output", "var-output", "condition"):
            content_paths.add(absolute)
    return all_paths, content_paths


def _absolute_path(var: str, path: Path, env: Dict[str, Tuple[str, Path]], root_var: str) -> Optional[Path]:
    steps: List[str] = list(path)
    current = var
    seen = set()
    while current not in (root_var, ROOT_VARIABLE):
        if current in seen or current not in env:
            return None
        seen.add(current)
        source, source_path = env[current]
        steps = list(source_path) + steps
        current = source
    return tuple(steps)


class _ProjectingBuilder:
    """Builds a projected tree from an event stream.

    A node is materialised when its absolute path lies *on* some referenced
    path (interior/navigation node) or *below* a content path (descendant of
    a subtree whose content is read).  Everything else is skipped.
    """

    def __init__(self, paths: Set[Path], content_paths: Optional[Set[Path]] = None):
        self._paths = paths
        self._content_paths = content_paths if content_paths is not None else set(paths)
        self._path_stack: List[str] = []
        self._node_stack: List[Optional[XMLNode]] = []
        self.root: Optional[XMLNode] = None

    def _keep(self, path: Tuple[str, ...]) -> bool:
        for candidate in self._paths:
            if len(path) <= len(candidate) and candidate[: len(path)] == path:
                return True
        for candidate in self._content_paths:
            if len(path) > len(candidate) and path[: len(candidate)] == candidate:
                return True
        return False

    def feed(self, event: Event) -> None:
        if isinstance(event, StartElement):
            self._path_stack.append(event.name)
            keep = self._keep(tuple(self._path_stack))
            parent = self._node_stack[-1] if self._node_stack else None
            if keep:
                node = XMLNode(event.name)
                if parent is not None:
                    parent.append_child(node)
                elif self.root is None:
                    self.root = node
                self._node_stack.append(node)
            else:
                self._node_stack.append(None)
        elif isinstance(event, EndElement):
            self._path_stack.pop()
            self._node_stack.pop()
        elif isinstance(event, Characters):
            if self._node_stack and self._node_stack[-1] is not None:
                self._node_stack[-1].append_child(event.text)


class ProjectionDomEngine:
    """Project the document to the query's paths, then evaluate in memory."""

    name = "projection-dom"

    def __init__(self, query: Union[str, XQExpr]):
        self.query = parse_query(query) if isinstance(query, str) else query
        self.paths, self.content_paths = projection_path_sets(self.query)

    def run(self, document: DocumentSource, *, collect_output: bool = True) -> BaselineResult:
        """Run the query over ``document`` with path projection."""
        started = time.perf_counter()
        events = iter_events(document, document_events=False)
        result = self.run_events(events, collect_output=collect_output)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def run_events(self, events: Iterable[Event], *, collect_output: bool = True) -> BaselineResult:
        """Run over an already-parsed event iterable."""
        from repro.xquery.semantics import evaluate_to_string

        started = time.perf_counter()
        builder = _ProjectingBuilder(self.paths, self.content_paths)
        for event in events:
            builder.feed(event)
        root = builder.root if builder.root is not None else XMLNode("#empty")
        events_cost, bytes_cost = tree_cost(root)
        output = evaluate_to_string(self.query, root)
        elapsed = time.perf_counter() - started
        return BaselineResult(
            output=output if collect_output else None,
            peak_buffered_events=events_cost,
            peak_buffered_bytes=bytes_cost,
            elapsed_seconds=elapsed,
            output_bytes=len(output),
        )
