"""Naive full-materialisation baseline ("Galax-like").

Parses the entire document into an in-memory tree and evaluates the query
with the reference XQuery⁻ semantics.  Peak memory therefore grows linearly
with the document size regardless of the query -- the regime the paper's
Figure 4 shows for Galax.
"""

from __future__ import annotations

import time
from typing import Union

from repro.baselines.common import BaselineResult, tree_cost
from repro.xmlstream.parser import DocumentSource, parse_tree
from repro.xmlstream.tree import XMLNode
from repro.xquery.ast import XQExpr
from repro.xquery.parser import parse_query
from repro.xquery.semantics import evaluate_to_string


class NaiveDomEngine:
    """Materialise everything, then evaluate in memory."""

    name = "naive-dom"

    def __init__(self, query: Union[str, XQExpr]):
        self.query = parse_query(query) if isinstance(query, str) else query

    def run(self, document: DocumentSource, *, collect_output: bool = True) -> BaselineResult:
        """Run the query over ``document`` (text, path, file object, chunks)."""
        started = time.perf_counter()
        root = parse_tree(document)
        return self._finish(root, collect_output, started)

    def run_tree(self, root: XMLNode, *, collect_output: bool = True) -> BaselineResult:
        """Run over an already-materialised tree (useful in micro-benchmarks)."""
        return self._finish(root, collect_output, time.perf_counter())

    def _finish(self, root: XMLNode, collect_output: bool, started: float) -> BaselineResult:
        events, cost = tree_cost(root)
        output = evaluate_to_string(self.query, root)
        elapsed = time.perf_counter() - started
        return BaselineResult(
            output=output if collect_output else None,
            peak_buffered_events=events,
            peak_buffered_bytes=cost,
            elapsed_seconds=elapsed,
            # Output statistics survive even when the text is discarded.
            output_bytes=len(output),
        )
