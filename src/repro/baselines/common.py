"""Shared result type and helpers for the baseline engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.xmlstream.tree import XMLNode


@dataclass
class BaselineResult:
    """Result of running a baseline engine.

    ``output_bytes`` is populated even when the caller discards the output
    text (``collect_output=False``): differential harnesses compare output
    statistics across engines without holding N result strings alive.  The
    count uses ``len(output)`` -- the same unit the streaming engine's
    :class:`~repro.engine.stats.RunStatistics.output_bytes` reports.
    """

    output: Optional[str]
    peak_buffered_events: int
    peak_buffered_bytes: int
    elapsed_seconds: float
    output_bytes: int = 0

    @property
    def peak_memory_bytes(self) -> int:
        """Alias used by the benchmark tables."""
        return self.peak_buffered_bytes


def tree_cost(node: XMLNode) -> tuple:
    """(events, bytes) cost of holding a subtree in memory.

    Charged the same way the FluX engine charges its event buffers, so the
    memory columns of the benchmark tables are directly comparable.
    """
    events = 0
    cost = 0
    stack = [node]
    while stack:
        current = stack.pop()
        events += 2  # start + end element
        cost += 2 * (len(current.name) + 3)
        for child in current.children:
            if isinstance(child, XMLNode):
                stack.append(child)
            else:
                events += 1
                cost += len(child)
    return events, cost
