"""Execution options: one object instead of four scattered kwargs.

Before the session redesign, every layer of the engine threaded
``collect_output`` / ``expand_attrs`` / ``memory_budget`` /
``memory_page_bytes`` through its own signature.  :class:`ExecutionOptions`
is the single carrier for all per-run knobs; compile-time choices
(projection, simplifications, safety) stay parameters of
:meth:`~repro.core.session.FluxSession.prepare` because they select *which
plan* is built, not how a run executes it.

Options are immutable; derive variants with :meth:`ExecutionOptions.replace`
or build one from legacy keyword spellings with
:func:`ExecutionOptions.from_kwargs`.

.. note:: Import-layering constraint: :mod:`repro.engine.engine` imports
   this module while the rest of :mod:`repro.core` imports the engine, so
   this module must never import from ``repro.core`` or ``repro.engine``
   (only leaf modules such as :mod:`repro.xmlstream`) -- anything more
   would close an import cycle at package-import time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Optional

from repro.xmlstream.parser import DEFAULT_CHUNK_SIZE


@dataclass(frozen=True)
class FeedOptions:
    """Knobs for continuous document feeds (:mod:`repro.feeds`).

    Parameters
    ----------
    heartbeat_interval_bytes:
        How often (in fed bytes) the feed's heartbeat callback fires --
        punctuation for monitors of otherwise-quiet streams.  Only
        meaningful when the feed is opened with an ``on_heartbeat``
        callback.
    resume_offset:
        Absolute byte offset into the stream at which processing starts;
        everything before it is discarded unparsed.  Pass the
        ``resume_offset`` reported by a previous (crashed or closed) feed
        over the same stream to skip its already-completed documents.
    """

    heartbeat_interval_bytes: int = 1 << 20
    resume_offset: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_bytes <= 0:
            raise ValueError(
                "heartbeat_interval_bytes must be positive, "
                f"got {self.heartbeat_interval_bytes}"
            )
        if self.resume_offset < 0:
            raise ValueError(f"resume_offset must be >= 0, got {self.resume_offset}")


@dataclass(frozen=True)
class ExecutionOptions:
    """Per-run execution knobs, shared by every public execution path.

    Parameters
    ----------
    collect_output:
        Join the run's output into ``result.output`` (default).  Off, the
        run only counts output events/bytes (a :class:`~repro.pipeline.sinks.NullSink`);
        ignored when an explicit sink is passed to ``execute``.
    expand_attrs:
        Apply the paper's attribute-to-subelement expansion to the input.
    memory_budget:
        Hard cap, in bytes, on resident buffered memory (see
        :mod:`repro.storage`); ``None`` keeps all buffers on the heap.
    memory_page_bytes:
        Page granularity for spillable buffers; only meaningful with a
        budget.
    chunk_size:
        Read size for pull-mode document sources.
    fastpath:
        Request the bytes-native accelerated engine core
        (:mod:`repro.fastpath`) for this run.  ``None`` (the default) means
        "not requested" -- the classic pipeline runs unless the
        ``REPRO_FASTPATH`` environment variable forces the fast path on.
        ``REPRO_FASTPATH=0`` overrides ``True`` (kill switch), and runs the
        fast path cannot serve (``expand_attrs``) silently fall back to the
        classic pipeline.  Results are byte-identical either way.
    trace:
        Request per-run stage tracing (:mod:`repro.obs`): the result gains a
        ``trace`` report with the per-stage time/bytes/events breakdown and
        the span tree.  ``None`` (the default) defers to the ``REPRO_TRACE``
        environment variable (``1`` forces on, ``0`` forces off, mirroring
        ``REPRO_FASTPATH``).  Tracing never changes output bytes or the
        logical buffering peaks -- the conformance oracle asserts this.
    serve_metrics:
        Serve live run inspection over HTTP (:mod:`repro.obs.serve`) on
        ``127.0.0.1:<port>`` for the duration of the process: ``/metrics``
        (Prometheus text) and ``/progress`` (JSON watermarks of open
        push-mode runs).  Port ``0`` binds an ephemeral port (shared by
        all port-0 requests).  ``None`` (the default) serves nothing.
        Serving never changes output bytes -- the runs execute identical
        code whether or not anyone is watching.
    feed:
        Continuous-feed knobs (:class:`FeedOptions`) for
        :meth:`~repro.core.session.PreparedQuery.open_feed`; ignored by
        single-document runs.  ``None`` uses the feed defaults.
    """

    collect_output: bool = True
    expand_attrs: bool = False
    memory_budget: Optional[int] = None
    memory_page_bytes: Optional[int] = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    fastpath: Optional[bool] = None
    trace: Optional[bool] = None
    serve_metrics: Optional[int] = None
    feed: Optional[FeedOptions] = None

    def __post_init__(self) -> None:
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(f"memory_budget must be positive, got {self.memory_budget}")
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.serve_metrics is not None and (
            not isinstance(self.serve_metrics, int) or self.serve_metrics < 0
        ):
            raise ValueError(
                f"serve_metrics must be a TCP port (>= 0), got {self.serve_metrics!r}"
            )
        if self.feed is not None and not isinstance(self.feed, FeedOptions):
            raise ValueError(f"feed must be a FeedOptions, got {self.feed!r}")

    def replace(self, **changes) -> "ExecutionOptions":
        """A copy with the given fields changed (validation re-runs)."""
        return _dc_replace(self, **changes)

    @classmethod
    def from_kwargs(
        cls, base: Optional["ExecutionOptions"] = None, **kwargs
    ) -> "ExecutionOptions":
        """Build options from keyword overrides on top of a base.

        ``None``-valued keywords mean "not given, inherit from the base" --
        to explicitly lift a base's memory budget, pass a full
        ``ExecutionOptions`` instead of an override.
        """
        base = base if base is not None else DEFAULT_OPTIONS
        changes = {key: value for key, value in kwargs.items() if value is not None}
        return base.replace(**changes) if changes else base


#: The defaults every session starts from.
DEFAULT_OPTIONS = ExecutionOptions()
