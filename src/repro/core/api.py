"""Convenience layer tying the pipeline together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.baselines import NaiveDomEngine, ProjectionDomEngine
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engine.engine import FluxEngine, FluxRunResult, StreamingRun, ensure_rooted
from repro.flux.ast import FluxExpr
from repro.flux.rewrite import rewrite_to_flux
from repro.flux.safety import check_safety
from repro.flux.serialize import flux_to_source
from repro.multiquery import MultiQueryEngine, MultiQueryRun, QueryRegistry
from repro.xmlstream.parser import DocumentSource
from repro.xquery.ast import ROOT_VARIABLE, XQExpr
from repro.xquery.parser import parse_query


def load_dtd(source: Union[str, DTD], *, root_element: Optional[str] = None) -> DTD:
    """Parse (if necessary) a DTD and attach the virtual document root.

    Rooting follows the engine's rules (:func:`ensure_rooted`): an explicit
    ``root_element`` wins, otherwise a root the DTD itself declares; a DTD
    with neither raises ``ValueError``.
    """
    dtd = parse_dtd(source) if isinstance(source, str) else source
    return ensure_rooted(dtd, root_element)


@dataclass
class CompiledQuery:
    """An XQuery⁻ query scheduled into FluX, with its intermediate stages."""

    flux: FluxExpr
    flux_source: str
    normalized_source: str
    is_safe: bool
    dtd: DTD

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.flux_source


def compile_to_flux(
    query: Union[str, XQExpr],
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    root_var: str = ROOT_VARIABLE,
    apply_simplifications: bool = True,
) -> CompiledQuery:
    """Schedule an XQuery⁻ query into an equivalent safe FluX query."""
    schema = load_dtd(dtd, root_element=root_element)
    expr = parse_query(query) if isinstance(query, str) else query
    result = rewrite_to_flux(
        expr, schema, root_var=root_var, apply_simplifications=apply_simplifications
    )
    violations = check_safety(result.flux, schema, root_var=root_var)
    return CompiledQuery(
        flux=result.flux,
        flux_source=flux_to_source(result.flux),
        normalized_source=result.normalized.to_source(),
        is_safe=not violations,
        dtd=schema,
    )


def run_query(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    collect_output: bool = True,
    expand_attrs: bool = False,
    projection: bool = True,
    memory_budget: Optional[int] = None,
) -> FluxRunResult:
    """One-shot: schedule, compile and execute a query over a document.

    ``memory_budget`` (bytes) makes the run's buffers spillable under a
    hard resident cap (see :mod:`repro.storage`); output is unaffected.
    """
    schema = load_dtd(dtd, root_element=root_element)
    engine = FluxEngine(query, schema, projection=projection, memory_budget=memory_budget)
    return engine.run(document, collect_output=collect_output, expand_attrs=expand_attrs)


def run_query_streaming(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    expand_attrs: bool = False,
    projection: bool = True,
    memory_budget: Optional[int] = None,
) -> "StreamingRun":
    """One-shot streaming run: iterate serialized output fragments.

    The returned :class:`~repro.engine.engine.StreamingRun` parses, projects
    and executes lazily as fragments are pulled; no full-output string is
    ever materialized, so result size does not affect peak memory.  Its
    ``stats`` attribute carries the run statistics once exhausted.
    """
    schema = load_dtd(dtd, root_element=root_element)
    engine = FluxEngine(query, schema, projection=projection, memory_budget=memory_budget)
    return engine.run_streaming(document, expand_attrs=expand_attrs)


def run_query_to_sink(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    writable,
    *,
    root_element: Optional[str] = None,
    expand_attrs: bool = False,
    projection: bool = True,
    memory_budget: Optional[int] = None,
) -> FluxRunResult:
    """One-shot file-output run: write fragments straight into ``writable``.

    Mirrors :meth:`FluxEngine.run_to_sink` without requiring the caller to
    build an engine: ``writable`` is anything with a ``write(str)`` method
    (an open file, a socket wrapper, ``sys.stdout``).  The result's
    ``output`` is ``None``; peak memory stays independent of output size.
    """
    schema = load_dtd(dtd, root_element=root_element)
    engine = FluxEngine(query, schema, projection=projection, memory_budget=memory_budget)
    return engine.run_to_sink(document, writable, expand_attrs=expand_attrs)


def run_queries(
    queries: Union[Mapping[str, Union[str, XQExpr]], Sequence[Union[str, XQExpr]]],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    collect_output: bool = True,
    sinks: Optional[Mapping[str, object]] = None,
    expand_attrs: bool = False,
    projection: bool = True,
    memory_budget: Optional[int] = None,
) -> MultiQueryRun:
    """Run N queries over one shared document pass (multi-query execution).

    ``queries`` is either a mapping ``name -> query`` or a plain sequence
    (auto-named ``q0``, ``q1``, ...).  The document is tokenized, coalesced
    and projected exactly once through the merged union filter; each query
    executes against its own projected sub-stream with its own buffers and
    statistics, so per-query results are identical to N independent
    :func:`run_query` calls -- only the shared scan cost is amortized.

    When ``sinks`` is given it must map every query name to a writable
    object; each query's output streams into its sink and the per-query
    ``output`` fields are ``None``.

    ``memory_budget`` (bytes) caps resident buffered memory for the whole
    pass: one shared governor spills the coldest buffer pages of any query
    to disk when the mix would exceed it (see :mod:`repro.storage`).
    """
    if isinstance(queries, str):
        raise TypeError(
            "queries must be a mapping or a sequence of queries; "
            "for a single query use run_query(...)"
        )
    if not isinstance(queries, Mapping):
        queries = {f"q{index}": query for index, query in enumerate(queries)}
    schema = load_dtd(dtd, root_element=root_element)
    registry = QueryRegistry(schema, projection=projection)
    for name, query in queries.items():
        registry.register(name, query)
    engine = MultiQueryEngine(registry, memory_budget=memory_budget)
    if sinks is not None:
        return engine.run_to_sinks(document, sinks, expand_attrs=expand_attrs)
    return engine.run(document, collect_output=collect_output, expand_attrs=expand_attrs)


def compare_engines(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    projection: bool = True,
) -> Dict[str, Dict[str, object]]:
    """Run the FluX engine and both baselines over the same input.

    Returns, per engine, the output, the peak buffered bytes and the elapsed
    time -- the three quantities the paper's evaluation reports.  The
    document must be re-readable (text or path), since it is consumed three
    times.  ``projection`` toggles the FluX engine's pre-executor filter so
    that API-driven ablations match the CLI's ``--no-projection`` and the
    benchmark harness.
    """
    schema = load_dtd(dtd, root_element=root_element)
    expr = parse_query(query) if isinstance(query, str) else query

    flux_engine = FluxEngine(expr, schema, projection=projection)
    flux_result = flux_engine.run(document)

    naive = NaiveDomEngine(expr).run(document)
    projection = ProjectionDomEngine(expr).run(document)

    return {
        "flux": {
            "output": flux_result.output,
            "peak_buffered_bytes": flux_result.stats.peak_buffered_bytes,
            "peak_buffered_events": flux_result.stats.peak_buffered_events,
            "elapsed_seconds": flux_result.stats.elapsed_seconds,
        },
        "naive-dom": {
            "output": naive.output,
            "peak_buffered_bytes": naive.peak_buffered_bytes,
            "peak_buffered_events": naive.peak_buffered_events,
            "elapsed_seconds": naive.elapsed_seconds,
        },
        "projection-dom": {
            "output": projection.output,
            "peak_buffered_bytes": projection.peak_buffered_bytes,
            "peak_buffered_events": projection.peak_buffered_events,
            "elapsed_seconds": projection.elapsed_seconds,
        },
    }
