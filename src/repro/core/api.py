"""Convenience layer tying the pipeline together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.baselines import NaiveDomEngine, ProjectionDomEngine
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD, ROOT_ELEMENT
from repro.engine.engine import FluxEngine, FluxRunResult, StreamingRun
from repro.flux.ast import FluxExpr
from repro.flux.rewrite import rewrite_to_flux
from repro.flux.safety import check_safety
from repro.flux.serialize import flux_to_source
from repro.xmlstream.parser import DocumentSource
from repro.xquery.ast import ROOT_VARIABLE, XQExpr
from repro.xquery.parser import parse_query


def load_dtd(source: Union[str, DTD], *, root_element: Optional[str] = None) -> DTD:
    """Parse (if necessary) a DTD and attach the virtual document root."""
    dtd = parse_dtd(source) if isinstance(source, str) else source
    if ROOT_ELEMENT in dtd:
        return dtd
    if root_element is None:
        raise ValueError("root_element is required when the DTD has no attached root")
    return dtd.with_root(root_element)


@dataclass
class CompiledQuery:
    """An XQuery⁻ query scheduled into FluX, with its intermediate stages."""

    flux: FluxExpr
    flux_source: str
    normalized_source: str
    is_safe: bool
    dtd: DTD

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.flux_source


def compile_to_flux(
    query: Union[str, XQExpr],
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    root_var: str = ROOT_VARIABLE,
    apply_simplifications: bool = True,
) -> CompiledQuery:
    """Schedule an XQuery⁻ query into an equivalent safe FluX query."""
    schema = load_dtd(dtd, root_element=root_element)
    expr = parse_query(query) if isinstance(query, str) else query
    result = rewrite_to_flux(
        expr, schema, root_var=root_var, apply_simplifications=apply_simplifications
    )
    violations = check_safety(result.flux, schema, root_var=root_var)
    return CompiledQuery(
        flux=result.flux,
        flux_source=flux_to_source(result.flux),
        normalized_source=result.normalized.to_source(),
        is_safe=not violations,
        dtd=schema,
    )


def run_query(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    collect_output: bool = True,
    expand_attrs: bool = False,
    projection: bool = True,
) -> FluxRunResult:
    """One-shot: schedule, compile and execute a query over a document."""
    schema = load_dtd(dtd, root_element=root_element)
    engine = FluxEngine(query, schema, projection=projection)
    return engine.run(document, collect_output=collect_output, expand_attrs=expand_attrs)


def run_query_streaming(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    expand_attrs: bool = False,
    projection: bool = True,
) -> "StreamingRun":
    """One-shot streaming run: iterate serialized output fragments.

    The returned :class:`~repro.engine.engine.StreamingRun` parses, projects
    and executes lazily as fragments are pulled; no full-output string is
    ever materialized, so result size does not affect peak memory.  Its
    ``stats`` attribute carries the run statistics once exhausted.
    """
    schema = load_dtd(dtd, root_element=root_element)
    engine = FluxEngine(query, schema, projection=projection)
    return engine.run_streaming(document, expand_attrs=expand_attrs)


def compare_engines(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Run the FluX engine and both baselines over the same input.

    Returns, per engine, the output, the peak buffered bytes and the elapsed
    time -- the three quantities the paper's evaluation reports.  The
    document must be re-readable (text or path), since it is consumed three
    times.
    """
    schema = load_dtd(dtd, root_element=root_element)
    expr = parse_query(query) if isinstance(query, str) else query

    flux_engine = FluxEngine(expr, schema)
    flux_result = flux_engine.run(document)

    naive = NaiveDomEngine(expr).run(document)
    projection = ProjectionDomEngine(expr).run(document)

    return {
        "flux": {
            "output": flux_result.output,
            "peak_buffered_bytes": flux_result.stats.peak_buffered_bytes,
            "peak_buffered_events": flux_result.stats.peak_buffered_events,
            "elapsed_seconds": flux_result.stats.elapsed_seconds,
        },
        "naive-dom": {
            "output": naive.output,
            "peak_buffered_bytes": naive.peak_buffered_bytes,
            "peak_buffered_events": naive.peak_buffered_events,
            "elapsed_seconds": naive.elapsed_seconds,
        },
        "projection-dom": {
            "output": projection.output,
            "peak_buffered_bytes": projection.peak_buffered_bytes,
            "peak_buffered_events": projection.peak_buffered_events,
            "elapsed_seconds": projection.elapsed_seconds,
        },
    }
