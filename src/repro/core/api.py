"""Convenience layer tying the pipeline together.

Since the session redesign the one-shot functions here are thin shims over
:class:`~repro.core.session.FluxSession` -- each call builds a throwaway
session, prepares the query and executes it.  Long-lived callers should
hold a session instead: prepared queries are cached (repeat execution
skips parsing and scheduling entirely) and memory governance is shared.

Migration map (old -> new)::

    run_query(q, doc, dtd)            -> session.prepare(q).execute(doc)
    run_query_streaming(q, doc, dtd)  -> session.prepare(q).stream(doc)
    run_query_to_sink(q, doc, dtd, w) -> session.prepare(q).execute(doc, sink=w)
    run_queries({...}, doc, dtd)      -> session.prepare_many({...}).execute(doc)
    FluxEngine(q, dtd).run(doc)       -> session.prepare(q).execute(doc)
    (no old equivalent)               -> session.prepare(q).open_run() -- push mode

The scattered per-run keyword spellings (``collect_output=...``,
``expand_attrs=...``, ``projection=...``, ``memory_budget=...``) keep
working but emit :class:`DeprecationWarning`; pass an
:class:`~repro.core.options.ExecutionOptions` (and the compile-time
``projection`` flag to ``prepare``) instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.baselines import NaiveDomEngine, ProjectionDomEngine
from repro.core.options import ExecutionOptions
from repro.core.session import FluxSession
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engine.engine import FluxRunResult, StreamingRun, ensure_rooted
from repro.flux.ast import FluxExpr
from repro.flux.rewrite import rewrite_to_flux
from repro.flux.safety import check_safety
from repro.flux.serialize import flux_to_source
from repro.multiquery import MultiQueryRun
from repro.xmlstream.parser import DocumentSource
from repro.xquery.ast import ROOT_VARIABLE, XQExpr
from repro.xquery.parser import parse_query

#: Sentinel distinguishing "keyword not passed" from an explicit value, so
#: the deprecation warning only fires for spellings the caller actually used.
_UNSET = object()


def load_dtd(source: Union[str, DTD], *, root_element: Optional[str] = None) -> DTD:
    """Parse (if necessary) a DTD and attach the virtual document root.

    Rooting follows the engine's rules (:func:`ensure_rooted`): an explicit
    ``root_element`` wins, otherwise a root the DTD itself declares; a DTD
    with neither raises ``ValueError``.
    """
    dtd = parse_dtd(source) if isinstance(source, str) else source
    return ensure_rooted(dtd, root_element)


@dataclass
class CompiledQuery:
    """An XQuery⁻ query scheduled into FluX, with its intermediate stages."""

    flux: FluxExpr
    flux_source: str
    normalized_source: str
    is_safe: bool
    dtd: DTD

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.flux_source


def compile_to_flux(
    query: Union[str, XQExpr],
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    root_var: str = ROOT_VARIABLE,
    apply_simplifications: bool = True,
) -> CompiledQuery:
    """Schedule an XQuery⁻ query into an equivalent safe FluX query."""
    schema = load_dtd(dtd, root_element=root_element)
    expr = parse_query(query) if isinstance(query, str) else query
    result = rewrite_to_flux(
        expr, schema, root_var=root_var, apply_simplifications=apply_simplifications
    )
    violations = check_safety(result.flux, schema, root_var=root_var)
    return CompiledQuery(
        flux=result.flux,
        flux_source=flux_to_source(result.flux),
        normalized_source=result.normalized.to_source(),
        is_safe=not violations,
        dtd=schema,
    )


def _legacy_options(options: Optional[ExecutionOptions], **legacy):
    """Fold legacy keyword spellings into ``(options, projection)``, warning
    when any deprecated spelling was actually used."""
    given = {key: value for key, value in legacy.items() if value is not _UNSET}
    if given:
        warnings.warn(
            f"the {sorted(given)} keyword spelling(s) are deprecated; pass "
            "options=ExecutionOptions(...) (and give 'projection' to "
            "FluxSession.prepare) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    projection = given.pop("projection", True)
    return ExecutionOptions.from_kwargs(options, **given), projection


def _session_for(dtd: Union[str, DTD], root_element: Optional[str]) -> FluxSession:
    """A throwaway session for one shim call.

    Deliberately built *without* session-level options: the run's options
    (budget included) are passed per call, so any memory governor is
    run-owned and closed deterministically when the run ends -- a session
    governor would only be released by the session finalizer.
    """
    schema = load_dtd(dtd, root_element=root_element)
    return FluxSession(schema)


def run_query(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    options: Optional[ExecutionOptions] = None,
    collect_output=_UNSET,
    expand_attrs=_UNSET,
    projection=_UNSET,
    memory_budget=_UNSET,
) -> FluxRunResult:
    """One-shot: schedule, compile and execute a query over a document.

    A shim over :class:`~repro.core.session.FluxSession` -- hold a session
    yourself to reuse compiled plans across calls.
    """
    opts, use_projection = _legacy_options(
        options,
        collect_output=collect_output,
        expand_attrs=expand_attrs,
        projection=projection,
        memory_budget=memory_budget,
    )
    session = _session_for(dtd, root_element)
    return session.prepare(query, projection=use_projection).execute(document, options=opts)


def run_query_streaming(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    options: Optional[ExecutionOptions] = None,
    expand_attrs=_UNSET,
    projection=_UNSET,
    memory_budget=_UNSET,
) -> "StreamingRun":
    """One-shot streaming run: iterate serialized output fragments.

    The returned :class:`~repro.engine.engine.StreamingRun` parses, projects
    and executes lazily as fragments are pulled; no full-output string is
    ever materialized, so result size does not affect peak memory.  Its
    ``stats`` attribute carries the run statistics once exhausted.
    """
    opts, use_projection = _legacy_options(
        options,
        expand_attrs=expand_attrs,
        projection=projection,
        memory_budget=memory_budget,
    )
    session = _session_for(dtd, root_element)
    return session.prepare(query, projection=use_projection).stream(document, options=opts)


def run_query_to_sink(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    writable,
    *,
    root_element: Optional[str] = None,
    options: Optional[ExecutionOptions] = None,
    expand_attrs=_UNSET,
    projection=_UNSET,
    memory_budget=_UNSET,
) -> FluxRunResult:
    """One-shot file-output run: write fragments straight into ``writable``.

    ``writable`` is anything with a ``write(str)`` method (an open file, a
    socket wrapper, ``sys.stdout``).  The result's ``output`` is ``None``;
    peak memory stays independent of output size.
    """
    opts, use_projection = _legacy_options(
        options,
        expand_attrs=expand_attrs,
        projection=projection,
        memory_budget=memory_budget,
    )
    session = _session_for(dtd, root_element)
    return session.prepare(query, projection=use_projection).execute(
        document, sink=writable, options=opts
    )


def run_queries(
    queries: Union[Mapping[str, Union[str, XQExpr]], Sequence[Union[str, XQExpr]]],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    options: Optional[ExecutionOptions] = None,
    collect_output=_UNSET,
    sinks: Optional[Mapping[str, object]] = None,
    expand_attrs=_UNSET,
    projection=_UNSET,
    memory_budget=_UNSET,
) -> MultiQueryRun:
    """Run N queries over one shared document pass (multi-query execution).

    ``queries`` is either a mapping ``name -> query`` or a plain sequence
    (auto-named ``q0``, ``q1``, ...); see
    :meth:`~repro.core.session.FluxSession.prepare_many`.  When ``sinks``
    is given it must map every query name to a writable object.
    """
    if isinstance(queries, str):
        raise TypeError(
            "queries must be a mapping or a sequence of queries; "
            "for a single query use run_query(...)"
        )
    opts, use_projection = _legacy_options(
        options,
        collect_output=collect_output,
        expand_attrs=expand_attrs,
        projection=projection,
        memory_budget=memory_budget,
    )
    session = _session_for(dtd, root_element)
    prepared = session.prepare_many(queries, projection=use_projection)
    return prepared.execute(document, sinks=sinks, options=opts)


def compare_engines(
    query: Union[str, XQExpr],
    document: DocumentSource,
    dtd: Union[str, DTD],
    *,
    root_element: Optional[str] = None,
    projection: bool = True,
) -> Dict[str, Dict[str, object]]:
    """Run the FluX engine and both baselines over the same input.

    Returns, per engine, the output, the peak buffered bytes and the elapsed
    time -- the three quantities the paper's evaluation reports.  The
    document must be re-readable (text or path), since it is consumed three
    times.  ``projection`` toggles the FluX engine's pre-executor filter so
    that API-driven ablations match the CLI's ``--no-projection`` and the
    benchmark harness.
    """
    schema = load_dtd(dtd, root_element=root_element)
    expr = parse_query(query) if isinstance(query, str) else query

    session = FluxSession(schema)
    flux_result = session.prepare(expr, projection=projection).execute(document)

    naive_result = NaiveDomEngine(expr).run(document)
    projection_result = ProjectionDomEngine(expr).run(document)

    return {
        "flux": {
            "output": flux_result.output,
            "peak_buffered_bytes": flux_result.stats.peak_buffered_bytes,
            "peak_buffered_events": flux_result.stats.peak_buffered_events,
            "elapsed_seconds": flux_result.stats.elapsed_seconds,
        },
        "naive-dom": {
            "output": naive_result.output,
            "peak_buffered_bytes": naive_result.peak_buffered_bytes,
            "peak_buffered_events": naive_result.peak_buffered_events,
            "elapsed_seconds": naive_result.elapsed_seconds,
        },
        "projection-dom": {
            "output": projection_result.output,
            "peak_buffered_bytes": projection_result.peak_buffered_bytes,
            "peak_buffered_events": projection_result.peak_buffered_events,
            "elapsed_seconds": projection_result.elapsed_seconds,
        },
    }
