"""The session-oriented public API: prepare once, execute many times.

A :class:`FluxSession` is the long-lived object a service keeps per schema:

* **plan cache** -- ``session.prepare(query)`` returns a
  :class:`PreparedQuery` backed by an LRU :class:`PlanCache` keyed on the
  *normalized query text* and the DTD's stable
  :meth:`~repro.dtd.schema.DTD.fingerprint`.  Preparing the same query
  again skips parsing, scheduling and plan compilation entirely -- the
  expensive, perfectly cacheable step of FluX execution (the schedule
  depends only on query and DTD, never on the document).
* **unified execution** -- ``prepared.execute(document, sink=..., options=...)``
  replaces the old ``run`` / ``run_streaming`` / ``run_to_sink`` trio: where
  the output goes is a :mod:`~repro.pipeline.sinks` value, how the run
  behaves is one :class:`~repro.core.options.ExecutionOptions`.
* **push mode** -- ``prepared.open_run(sink)`` returns a
  :class:`~repro.engine.engine.RunHandle`: ``feed(chunk)`` / ``finish()``
  execute network-arriving documents incrementally, with every pipeline
  stage resumable across arbitrary chunk boundaries.
* **shared memory governance** -- a session constructed with a
  ``memory_budget`` owns one :class:`~repro.storage.governor.MemoryGovernor`
  for all of its runs, so the budget caps the *session's* resident buffered
  bytes, not each run separately.
* **multi-query** -- ``session.prepare_many({...})`` compiles through the
  same plan cache and executes all queries over one shared document pass
  (:mod:`repro.multiquery`), under the same governor.
* **cumulative telemetry** -- :class:`SessionStatistics` aggregates every
  completed run.

Typical service shape::

    with FluxSession(DTD_SOURCE, root_element="bib") as session:
        q = session.prepare(QUERY)             # compiled once, cached
        for document in documents:
            result = q.execute(document)       # plan reused, zero recompiles
        with q.open_run() as run:              # push mode: chunks, not docs
            for chunk in socket_chunks:
                run.feed(chunk)
        print(run.result.output, session.statistics.summary())
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.options import DEFAULT_OPTIONS, ExecutionOptions
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engine.engine import FluxEngine, FluxRunResult, RunHandle, StreamingRun, ensure_rooted
from repro.engine.stats import RunStatistics
from repro.feeds import FeedHandle
from repro.flux.ast import FluxExpr
from repro.multiquery import MultiQueryEngine, MultiQueryRun, QueryRegistry
from repro.obs.metrics import global_registry
from repro.storage.governor import MemoryGovernor
from repro.xmlstream.parser import DocumentSource
from repro.xquery.ast import ROOT_VARIABLE, XQExpr

#: Anything a session accepts as a query: source text, a parsed XQuery⁻
#: expression, or a ready-made FluX query.
QuerySource = Union[str, XQExpr, FluxExpr]

#: Default number of compiled plans a session retains.
DEFAULT_PLAN_CACHE_SIZE = 64

# Process-wide plan-cache telemetry (:mod:`repro.obs`): totals across every
# PlanCache instance, bumped alongside each cache's own counters -- plan
# lookups are per prepare(), far off any hot path.
_metrics = global_registry()
_CACHE_HITS = _metrics.counter("repro.plan_cache.hits.total", "Plan-cache lookups served from cache")
_CACHE_MISSES = _metrics.counter("repro.plan_cache.misses.total", "Plan-cache lookups that compiled")
_CACHE_EVICTIONS = _metrics.counter("repro.plan_cache.evictions.total", "Plans evicted by the LRU")


def _normalize_query(query: QuerySource) -> Tuple[str, str]:
    """A stable ``(kind, text)`` cache identity for a query argument.

    Source text is keyed after stripping *surrounding* whitespace only:
    whitespace inside the query can be significant (literal text in
    element constructors, string literals), so collapsing it could make
    two different queries share one plan.  AST arguments are keyed on
    their source rendering.  The kind tag keeps an XQuery⁻ source from
    ever colliding with a FluX source that happens to render identically.
    """
    if isinstance(query, str):
        return ("xquery", query.strip())
    if isinstance(query, FluxExpr):
        return ("flux", query.to_source())
    if isinstance(query, XQExpr):
        return ("xquery-ast", query.to_source())
    raise TypeError(f"not a query: {query!r}")


@dataclass(frozen=True)
class PlanKey:
    """Everything that determines a compiled plan, and nothing else."""

    query_kind: str
    query_text: str
    dtd_fingerprint: str
    projection: bool
    root_var: str
    apply_simplifications: bool
    require_safe: bool


class PlanCache:
    """A thread-safe LRU of compiled engines, with hit/miss/eviction counters.

    One cache can back any number of sessions (pass it to
    ``FluxSession(plan_cache=...)``); entries are keyed by
    :class:`PlanKey`, which embeds the DTD fingerprint, so sessions over
    different schemas never collide.  ``capacity=0`` disables retention
    (every lookup compiles).
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, FluxEngine]" = OrderedDict()
        self._lock = threading.RLock()
        #: In-flight builds: key -> Event set when the build settles.
        self._building: Dict[PlanKey, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, key: PlanKey, builder) -> FluxEngine:
        """The cached engine for ``key``, building (and retaining) on miss.

        Builds are single-flight *per key* but run outside the cache lock:
        concurrent sessions asking for the same plan compile it exactly
        once, while hits for other keys are never blocked behind a slow
        compilation.  If a build fails, one waiter takes over.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    _CACHE_HITS.inc()
                    return entry
                pending = self._building.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._building[key] = pending
                    self.misses += 1
                    _CACHE_MISSES.inc()
                    break  # this thread builds
            pending.wait()
            # Either the entry is cached now (hit on the next loop), or the
            # build failed / was not retained and this thread takes over.
        try:
            engine = builder()
        except BaseException:
            with self._lock:
                del self._building[key]
            pending.set()  # a waiter takes over the build
            raise
        with self._lock:
            # Retain before signalling: a waiter must find the entry, not a
            # gap that would trigger a redundant second compilation.
            if self.capacity > 0:
                self._entries[key] = engine
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    _CACHE_EVICTIONS.inc()
            del self._building[key]
        pending.set()
        return engine

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        """The cached keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict:
        """Counters and occupancy, for telemetry and tests."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class SessionStatistics:
    """Cumulative counters over every completed run of a session.

    ``absorb`` locks: the session's documented threading contract allows
    concurrent (unbounded) runs, and each run folds its totals in here
    once at completion -- far off the hot path.
    """

    runs: int = 0
    feed_runs: int = 0
    input_events: int = 0
    input_bytes: int = 0
    output_events: int = 0
    output_bytes: int = 0
    elapsed_seconds: float = 0.0
    peak_buffered_bytes: int = 0
    peak_resident_bytes: int = 0
    spill_count: int = 0
    handler_executions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def absorb(self, stats: RunStatistics, *, feed: bool = False) -> None:
        """Fold one completed run's statistics into the session totals."""
        with self._lock:
            self.runs += 1
            if feed:
                self.feed_runs += 1
            self.input_events += stats.input_events
            self.input_bytes += stats.input_bytes
            self.output_events += stats.output_events
            self.output_bytes += stats.output_bytes
            self.elapsed_seconds += stats.elapsed_seconds
            self.peak_buffered_bytes = max(self.peak_buffered_bytes, stats.peak_buffered_bytes)
            self.peak_resident_bytes = max(self.peak_resident_bytes, stats.peak_resident_bytes)
            self.spill_count += stats.spill_count
            self.handler_executions += stats.handler_executions

    def summary(self) -> str:
        """One line of session-lifetime telemetry."""
        return (
            f"runs={self.runs} (feed={self.feed_runs}) "
            f"in={self.input_events}ev/{self.input_bytes}B "
            f"out={self.output_events}ev/{self.output_bytes}B "
            f"peak-buffer={self.peak_buffered_bytes}B "
            f"spills={self.spill_count} "
            f"elapsed={self.elapsed_seconds:.3f}s"
        )


class PreparedQuery:
    """One compiled, cached plan bound to its session.

    All execution shapes share the plan:

    * :meth:`execute` -- pull a document through, output to any sink,
    * :meth:`stream` -- pull mode with lazily-yielded output fragments,
    * :meth:`open_run` -- push mode (``feed``/``finish``).
    """

    def __init__(self, session: "FluxSession", engine: FluxEngine, key: PlanKey):
        self.session = session
        self.engine = engine
        self.key = key

    # ------------------------------------------------------------ inspection

    @property
    def flux_source(self) -> str:
        """The scheduled FluX query in concrete syntax."""
        return self.engine.flux_source()

    @property
    def plan(self):
        """The compiled executor plan."""
        return self.engine.plan

    def describe_buffers(self) -> str:
        """Human-readable buffer trees (what the engine will buffer)."""
        return self.engine.describe_buffers()

    # ------------------------------------------------------------- execution

    def execute(
        self,
        document: DocumentSource,
        *,
        sink=None,
        options: Optional[ExecutionOptions] = None,
        **overrides,
    ) -> FluxRunResult:
        """Execute over one document; the unified replacement for the trio.

        ``sink=None`` collects output into ``result.output`` (or only counts
        it with ``collect_output=False``); a writable object streams; an
        :class:`~repro.pipeline.sinks.OutputSink` instance is used directly.
        ``options`` (or keyword overrides of the session defaults) carry the
        per-run knobs.
        """
        options = self.session._resolve_options(options, overrides)
        governor, owned = self.session._governor_for(options)
        return self.engine.execute(
            document,
            sink=sink,
            options=options,
            governor=governor,
            owns_governor=owned,
            on_finish=self.session.statistics.absorb,
        )

    def stream(
        self,
        document: DocumentSource,
        *,
        options: Optional[ExecutionOptions] = None,
        **overrides,
    ) -> StreamingRun:
        """Pull-mode run yielding serialized output fragments lazily."""
        options = self.session._resolve_options(options, overrides)
        governor, owned = self.session._governor_for(options)
        return self.engine.stream(
            document,
            options=options,
            governor=governor,
            owns_governor=owned,
            on_finish=self.session.statistics.absorb,
        )

    def open_run(
        self,
        sink=None,
        *,
        options: Optional[ExecutionOptions] = None,
        **overrides,
    ) -> RunHandle:
        """Open a push-mode run: feed chunks as they arrive, then finish.

        Pass a :class:`~repro.pipeline.sinks.FragmentSink` to get each
        ``feed`` call's output back incrementally (duplex streaming), a
        writable to forward output as it is produced, or nothing to collect
        the result.
        """
        options = self.session._resolve_options(options, overrides)
        governor, owned = self.session._governor_for(options)
        return self.engine.open_run(
            sink=sink,
            options=options,
            governor=governor,
            owns_governor=owned,
            on_finish=lambda stats: self.session.statistics.absorb(stats, feed=True),
        )

    def open_feed(
        self,
        sink=None,
        *,
        options: Optional[ExecutionOptions] = None,
        on_document=None,
        on_heartbeat=None,
        resume_from: Optional[int] = None,
        **overrides,
    ) -> "FeedHandle":
        """Open a continuous feed: unboundedly many concatenated documents.

        Each document executes as its own push run over the shared compiled
        plan (buffers, statistics and attribution reset at every boundary),
        against the session's shared memory governor when one is
        configured.  ``on_document`` receives each sealed
        :class:`~repro.feeds.DocumentResult`; ``on_heartbeat`` fires every
        ``options.feed.heartbeat_interval_bytes`` fed bytes; ``resume_from``
        (or ``options.feed.resume_offset``) skips an already-processed
        stream prefix byte-exactly.  See :mod:`repro.feeds`.
        """
        options = self.session._resolve_options(options, overrides)
        governor, owned = self.session._governor_for(options)
        return self.engine.open_feed(
            sink=sink,
            options=options,
            governor=governor,
            owns_governor=owned,
            on_finish=lambda stats: self.session.statistics.absorb(stats, feed=True),
            on_document=on_document,
            on_heartbeat=on_heartbeat,
            resume_from=resume_from,
        )


class PreparedQuerySet:
    """N prepared queries that execute over one shared document pass.

    Built by :meth:`FluxSession.prepare_many`; each member plan came
    through the session's plan cache, and every pass shares the session's
    memory governor.  ``execute`` returns a
    :class:`~repro.multiquery.engine.MultiQueryRun` keyed by query name.
    """

    def __init__(self, session: "FluxSession", registry: QueryRegistry):
        self.session = session
        self.registry = registry

    @property
    def names(self) -> tuple:
        """The member query names, in preparation order."""
        return self.registry.names

    def __len__(self) -> int:
        return len(self.registry)

    def execute(
        self,
        document: DocumentSource,
        *,
        sinks: Optional[Mapping[str, object]] = None,
        options: Optional[ExecutionOptions] = None,
        **overrides,
    ) -> MultiQueryRun:
        """One shared tokenize/coalesce/project pass for all member queries.

        ``sinks`` maps query names to writables (every name must be
        covered); omitted, each query collects (or just counts) its own
        output per ``options.collect_output``.
        """
        options = self.session._resolve_options(options, overrides)
        shared = self.session._shared_governor(options)
        engine = MultiQueryEngine(
            self.registry,
            chunk_size=options.chunk_size,
            governor=shared,
            # With a per-run budget override the multi-query engine creates
            # (and closes) its own pass-scoped governor.
            memory_budget=None if shared is not None else options.memory_budget,
            memory_page_bytes=options.memory_page_bytes,
            fastpath=options.fastpath,
        )
        if sinks is not None:
            run = engine.run_to_sinks(
                document, sinks, expand_attrs=options.expand_attrs, trace=options.trace
            )
        else:
            run = engine.run(
                document,
                collect_output=options.collect_output,
                expand_attrs=options.expand_attrs,
                trace=options.trace,
            )
        for result in run.results.values():
            self.session.statistics.absorb(result.stats)
        return run


class FluxSession:
    """A long-lived execution context: one DTD, cached plans, shared budget.

    Parameters
    ----------
    dtd:
        DTD source text or a parsed :class:`~repro.dtd.schema.DTD`.
    root_element:
        Name of the document element (required unless the DTD already has
        an attached root).
    options:
        Session-default :class:`~repro.core.options.ExecutionOptions`;
        every run starts from these and may override per call.
    memory_budget / memory_page_bytes:
        Convenience spellings folded into ``options``: one governor shared
        by all of the session's runs caps resident buffered memory
        session-wide.
    plan_cache_size / plan_cache:
        Retained compiled plans (LRU), or an externally-shared
        :class:`PlanCache`.

    Sessions are context managers; :meth:`close` releases the shared
    governor's spill file.

    Threading: ``prepare``/``prepare_many`` are thread-safe (the plan
    cache locks; concurrent sessions compile each plan exactly once), and
    *unbounded* runs are independent.  The shared memory governor of a
    session-level ``memory_budget`` is deliberately lock-free -- admission
    accounting sits on the per-event hot path -- so **bounded runs of one
    session must not execute concurrently**; give each thread its own
    session (they can still share a ``plan_cache``) or pass per-run
    budgets via ``options`` (those governors are private to the run).
    """

    def __init__(
        self,
        dtd: Union[str, DTD],
        *,
        root_element: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        memory_budget: Optional[int] = None,
        memory_page_bytes: Optional[int] = None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        plan_cache: Optional[PlanCache] = None,
        root_var: str = ROOT_VARIABLE,
    ):
        schema = parse_dtd(dtd) if isinstance(dtd, str) else dtd
        self.dtd = ensure_rooted(schema, root_element)
        self.root_var = root_var
        self.options = ExecutionOptions.from_kwargs(
            options if options is not None else DEFAULT_OPTIONS,
            memory_budget=memory_budget,
            memory_page_bytes=memory_page_bytes,
        )
        self.cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_size)
        self.statistics = SessionStatistics()
        self._fingerprint = self.dtd.fingerprint()
        self._governor: Optional[MemoryGovernor] = None
        self._governor_finalizer = None
        self._closed = False

    # -------------------------------------------------------------- prepare

    def prepare(
        self,
        query: QuerySource,
        *,
        projection: bool = True,
        apply_simplifications: bool = True,
        require_safe: bool = True,
    ) -> PreparedQuery:
        """Schedule and compile ``query`` (or fetch it from the plan cache).

        The keyword arguments are *compile-time* choices and are part of
        the cache key; per-run behaviour lives in
        :class:`~repro.core.options.ExecutionOptions` at execute time.
        """
        self._ensure_open()
        kind, text = _normalize_query(query)
        key = PlanKey(
            query_kind=kind,
            query_text=text,
            dtd_fingerprint=self._fingerprint,
            projection=projection,
            root_var=self.root_var,
            apply_simplifications=apply_simplifications,
            require_safe=require_safe,
        )
        engine = self.cache.get_or_build(
            key,
            lambda: FluxEngine(
                query,
                self.dtd,
                root_var=self.root_var,
                projection=projection,
                apply_simplifications=apply_simplifications,
                require_safe=require_safe,
            ),
        )
        return PreparedQuery(self, engine, key)

    def prepare_many(
        self,
        queries: Union[Mapping[str, QuerySource], Sequence[QuerySource]],
        *,
        projection: bool = True,
        apply_simplifications: bool = True,
        require_safe: bool = True,
    ) -> PreparedQuerySet:
        """Prepare N queries for shared-pass execution.

        ``queries`` is a mapping ``name -> query`` or a plain sequence
        (auto-named ``q0``, ``q1``, ...).  Every member compiles through
        the session's plan cache -- preparing a query solo and again in a
        set costs one compilation, not two.
        """
        self._ensure_open()
        if isinstance(queries, str):
            raise TypeError(
                "queries must be a mapping or a sequence of queries; "
                "for a single query use prepare(...)"
            )
        if not isinstance(queries, Mapping):
            queries = {f"q{index}": query for index, query in enumerate(queries)}
        if not queries:
            raise ValueError("prepare_many needs at least one query")
        registry = QueryRegistry(self.dtd, projection=projection)
        for name, query in queries.items():
            prepared = self.prepare(
                query,
                projection=projection,
                apply_simplifications=apply_simplifications,
                require_safe=require_safe,
            )
            registry.register_engine(name, prepared.engine)
        return PreparedQuerySet(self, registry)

    # ------------------------------------------------------------- one-shots

    def execute(
        self,
        query: QuerySource,
        document: DocumentSource,
        *,
        sink=None,
        options: Optional[ExecutionOptions] = None,
        projection: bool = True,
        **overrides,
    ) -> FluxRunResult:
        """Prepare (cached) and execute in one call."""
        prepared = self.prepare(query, projection=projection)
        return prepared.execute(document, sink=sink, options=options, **overrides)

    # ------------------------------------------------------------- internals

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this FluxSession is closed")

    def _resolve_options(
        self, options: Optional[ExecutionOptions], overrides: dict
    ) -> ExecutionOptions:
        """Per-run options: the caller's (or the session defaults) plus
        keyword overrides.

        A session-level memory budget applies to *every* run, as the
        session contract promises: an explicit ``options`` object that
        does not set its own budget inherits the session's, so passing
        options for an unrelated knob can never silently unbound a run.
        """
        self._ensure_open()
        if options is None:
            base = self.options
        else:
            base = options
            if base.memory_budget is None and self.options.memory_budget is not None:
                base = base.replace(
                    memory_budget=self.options.memory_budget,
                    memory_page_bytes=self.options.memory_page_bytes,
                )
        return ExecutionOptions.from_kwargs(base, **overrides)

    def _shared_governor(self, options: ExecutionOptions) -> Optional[MemoryGovernor]:
        """The lazily-created session governor, when the run's budget matches
        the session's; ``None`` otherwise (no budget, or per-run override)."""
        if options.memory_budget is None:
            return None
        if (
            options.memory_budget == self.options.memory_budget
            and options.memory_page_bytes == self.options.memory_page_bytes
        ):
            if self._governor is None:
                self._governor = MemoryGovernor(
                    self.options.memory_budget, page_bytes=self.options.memory_page_bytes
                )
                # A session that is dropped without close() must not leak
                # the governor's spill file; the finalizer references only
                # the governor (close is idempotent), never the session.
                self._governor_finalizer = weakref.finalize(self, self._governor.close)
            return self._governor
        return None

    def _governor_for(self, options: ExecutionOptions) -> Tuple[Optional[MemoryGovernor], bool]:
        """The governor a run should use: ``(governor, run_owns_it)``.

        Runs whose budget matches the session's share the session governor
        (never closed by the run); a per-run override gets a private,
        run-owned governor.  No budget anywhere -> no governor.
        """
        shared = self._shared_governor(options)
        if shared is not None:
            return shared, False
        if options.memory_budget is None:
            return None, False
        return (
            MemoryGovernor(options.memory_budget, page_bytes=options.memory_page_bytes),
            True,
        )

    # ------------------------------------------------------------- telemetry

    def memory_telemetry(self) -> Optional[dict]:
        """The shared governor's counters, ``None`` when unbounded/unused."""
        return self._governor.telemetry() if self._governor is not None else None

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the session governor (spill file included).  Idempotent."""
        self._closed = True
        if self._governor_finalizer is not None:
            self._governor_finalizer()  # runs governor.close() exactly once
            self._governor_finalizer = None
        self._governor = None

    def __enter__(self) -> "FluxSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
