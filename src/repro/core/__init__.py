"""Public API of the FluX reproduction.

Most applications only need three things:

* :func:`compile_to_flux` -- turn an XQuery⁻ query plus a DTD into a safe,
  buffer-minimising FluX query (the paper's Sections 4.1/4.2),
* :class:`FluxEngine` -- compile once and execute over streaming documents,
  collecting output and buffer statistics (Section 5); its
  ``run_streaming`` / ``run_to_sink`` methods expose the incremental output
  API of the push-based pipeline,
* :func:`run_query` / :func:`run_query_streaming` / :func:`run_query_to_sink`
  -- one-shot convenience wrappers around the two,
* :func:`run_queries` -- multi-query execution: N registered queries share
  one tokenize/coalesce/project pass over the document
  (:mod:`repro.multiquery`), each returning its own result and statistics.

The baseline engines (:class:`NaiveDomEngine`, :class:`ProjectionDomEngine`)
are re-exported for side-by-side comparisons, as used by the benchmark
harness that reproduces Figure 4.
"""

from repro.core.api import (
    CompiledQuery,
    compare_engines,
    compile_to_flux,
    load_dtd,
    run_queries,
    run_query,
    run_query_streaming,
    run_query_to_sink,
)
from repro.baselines import NaiveDomEngine, ProjectionDomEngine
from repro.engine.engine import FluxEngine, FluxRunResult, StreamingRun
from repro.engine.stats import RunStatistics
from repro.multiquery import MultiQueryEngine, MultiQueryRun, QueryRegistry
from repro.storage import MemoryGovernor, parse_memory_budget

__all__ = [
    "CompiledQuery",
    "MemoryGovernor",
    "parse_memory_budget",
    "FluxEngine",
    "FluxRunResult",
    "MultiQueryEngine",
    "MultiQueryRun",
    "NaiveDomEngine",
    "ProjectionDomEngine",
    "QueryRegistry",
    "RunStatistics",
    "StreamingRun",
    "compare_engines",
    "compile_to_flux",
    "load_dtd",
    "run_queries",
    "run_query",
    "run_query_streaming",
    "run_query_to_sink",
]
