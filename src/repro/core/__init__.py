"""Public API of the FluX reproduction.

Start with a :class:`FluxSession` -- the long-lived object a service keeps
per schema:

* :meth:`FluxSession.prepare` -- schedule + compile a query once (LRU plan
  cache keyed on normalized query text and the DTD fingerprint); returns a
  :class:`PreparedQuery`,
* :meth:`PreparedQuery.execute` -- one document through the compiled plan,
  output to any :mod:`~repro.pipeline.sinks` target, behaviour in one
  :class:`ExecutionOptions`,
* :meth:`PreparedQuery.open_run` -- push mode: ``feed(chunk)`` /
  ``finish()`` for network-arriving documents,
* :meth:`FluxSession.prepare_many` -- N queries, one shared document pass.

:func:`compile_to_flux` exposes the scheduling rewrite itself (the paper's
Sections 4.1/4.2); the one-shot helpers (:func:`run_query` and friends) and
:class:`FluxEngine` remain as shims for quick scripts and the pre-session
API.  The baseline engines (:class:`NaiveDomEngine`,
:class:`ProjectionDomEngine`) are re-exported for side-by-side comparisons,
as used by the benchmark harness that reproduces Figure 4.
"""

from repro.core.api import (
    CompiledQuery,
    compare_engines,
    compile_to_flux,
    load_dtd,
    run_queries,
    run_query,
    run_query_streaming,
    run_query_to_sink,
)
from repro.core.options import DEFAULT_OPTIONS, ExecutionOptions, FeedOptions
from repro.core.session import (
    FluxSession,
    PlanCache,
    PlanKey,
    PreparedQuery,
    PreparedQuerySet,
    SessionStatistics,
)
from repro.baselines import NaiveDomEngine, ProjectionDomEngine
from repro.engine.engine import FluxEngine, FluxRunResult, RunHandle, StreamingRun
from repro.engine.stats import RunStatistics
from repro.feeds import DocumentResult, FeedHandle, FeedResult
from repro.multiquery import MultiQueryEngine, MultiQueryRun, QueryRegistry
from repro.pipeline.sinks import (
    CollectSink,
    FragmentSink,
    NullSink,
    OutputSink,
    WritableSink,
)
from repro.obs import (
    MetricsRegistry,
    TraceReport,
    Tracer,
    global_registry,
    prometheus_text,
    validate_span_tree,
)
from repro.storage import MemoryGovernor, parse_memory_budget

__all__ = [
    "CollectSink",
    "CompiledQuery",
    "DEFAULT_OPTIONS",
    "DocumentResult",
    "ExecutionOptions",
    "FeedHandle",
    "FeedOptions",
    "FeedResult",
    "FluxEngine",
    "FluxRunResult",
    "FluxSession",
    "FragmentSink",
    "MemoryGovernor",
    "MetricsRegistry",
    "MultiQueryEngine",
    "MultiQueryRun",
    "NaiveDomEngine",
    "NullSink",
    "OutputSink",
    "PlanCache",
    "PlanKey",
    "PreparedQuery",
    "PreparedQuerySet",
    "ProjectionDomEngine",
    "QueryRegistry",
    "RunHandle",
    "RunStatistics",
    "SessionStatistics",
    "StreamingRun",
    "TraceReport",
    "Tracer",
    "WritableSink",
    "compare_engines",
    "compile_to_flux",
    "global_registry",
    "load_dtd",
    "parse_memory_budget",
    "prometheus_text",
    "run_queries",
    "run_query",
    "run_query_streaming",
    "run_query_to_sink",
    "validate_span_tree",
]
