"""Streaming DTD validation.

The paper assumes the input stream is validated by the SAX layer: every child
tag read from the stream drives one transition of the Glushkov automaton of
the parent's content model, and the same transition is what produces the
``on-first past(S)`` punctuation events with negligible overhead
(Appendix B).

:class:`StreamValidator` implements that layer in a reusable way:

* it can be used standalone to check that a document conforms to a DTD
  (``validate`` / ``iter_validated``),
* the engine drives one :class:`~repro.dtd.constraints.FirstPastTracker` per
  *active scope*; the validator exposes the same state-transition machinery
  so the two stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.dtd.constraints import OrderConstraints
from repro.dtd.errors import ValidationError
from repro.dtd.glushkov import INITIAL_STATE
from repro.dtd.schema import DTD
from repro.xmlstream.events import (
    Characters,
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)


@dataclass
class _Frame:
    """Validation state for one open element."""

    name: str
    constraints: Optional[OrderConstraints]
    state: Optional[int]
    allows_text: bool
    valid: bool = True


@dataclass
class ValidationReport:
    """Outcome of validating a document against a DTD."""

    errors: List[str] = field(default_factory=list)
    element_count: int = 0
    text_event_count: int = 0

    @property
    def is_valid(self) -> bool:
        """Whether the document conforms to the DTD."""
        return not self.errors


class StreamValidator:
    """Validates an event stream against a DTD, one event at a time.

    Parameters
    ----------
    dtd:
        The DTD to validate against.
    expected_root:
        Optional required name of the document element.
    strict:
        When true, :class:`ValidationError` is raised at the first violation;
        otherwise violations are recorded in the report.
    """

    def __init__(self, dtd: DTD, *, expected_root: Optional[str] = None, strict: bool = False):
        self._dtd = dtd
        self._expected_root = expected_root or dtd.root_element
        self._strict = strict
        self._stack: List[_Frame] = []
        self._report = ValidationReport()
        self._seen_root = False

    # -------------------------------------------------------------- results

    @property
    def report(self) -> ValidationReport:
        """The (mutable, growing) validation report."""
        return self._report

    # ------------------------------------------------------------ streaming

    def feed(self, event: Event) -> None:
        """Validate one event."""
        if isinstance(event, (StartDocument, EndDocument)):
            return
        if isinstance(event, StartElement):
            self._start_element(event)
        elif isinstance(event, EndElement):
            self._end_element(event)
        elif isinstance(event, Characters):
            self._characters(event)
        else:
            raise TypeError(f"not an XML event: {event!r}")

    def finish(self) -> ValidationReport:
        """Signal end of stream and return the final report."""
        if self._stack:
            self._record(f"stream ended inside element <{self._stack[-1].name}>")
        return self._report

    def iter_validated(self, events: Iterable[Event]) -> Iterator[Event]:
        """Yield events unchanged while validating them on the fly."""
        for event in events:
            self.feed(event)
            yield event
        self.finish()

    def validate(self, events: Iterable[Event]) -> ValidationReport:
        """Validate a whole event stream and return the report."""
        for event in events:
            self.feed(event)
        return self.finish()

    # ----------------------------------------------------------- internals

    def _record(self, message: str) -> None:
        if self._strict:
            raise ValidationError(message)
        self._report.errors.append(message)

    def _start_element(self, event: StartElement) -> None:
        self._report.element_count += 1
        name = event.name
        if not self._stack:
            if self._expected_root and name != self._expected_root:
                self._record(f"root element is <{name}>, expected <{self._expected_root}>")
            self._seen_root = True
        else:
            parent = self._stack[-1]
            self._advance_parent(parent, name)
        if name in self._dtd:
            constraints = self._dtd.constraints(name)
            frame = _Frame(
                name=name,
                constraints=constraints,
                state=INITIAL_STATE,
                allows_text=self._dtd.allows_text(name),
            )
        else:
            self._record(f"element <{name}> is not declared in the DTD")
            frame = _Frame(name=name, constraints=None, state=None, allows_text=True, valid=False)
        self._stack.append(frame)

    def _advance_parent(self, parent: _Frame, child_name: str) -> None:
        if parent.constraints is None or parent.state is None:
            return
        next_state = parent.constraints.automaton.step(parent.state, child_name)
        if next_state is None:
            if parent.valid:
                self._record(
                    f"element <{child_name}> is not allowed at this position inside <{parent.name}>"
                )
                parent.valid = False
            parent.state = None
        else:
            parent.state = next_state

    def _end_element(self, event: EndElement) -> None:
        if not self._stack:
            self._record(f"unexpected closing tag </{event.name}>")
            return
        frame = self._stack.pop()
        if frame.name != event.name:
            self._record(f"closing tag </{event.name}> does not match <{frame.name}>")
            return
        if frame.constraints is not None and frame.state is not None and frame.valid:
            if not frame.constraints.automaton.is_accepting(frame.state):
                self._record(f"element <{frame.name}> ended with incomplete content")

    def _characters(self, event: Characters) -> None:
        self._report.text_event_count += 1
        if not self._stack:
            if event.text.strip():
                self._record("character data outside the root element")
            return
        frame = self._stack[-1]
        if not frame.allows_text and event.text.strip():
            self._record(f"character data is not allowed inside <{frame.name}>")


def validate_document(dtd: DTD, events: Iterable[Event], *, expected_root: Optional[str] = None) -> ValidationReport:
    """Convenience wrapper: validate ``events`` against ``dtd``."""
    validator = StreamValidator(dtd, expected_root=expected_root)
    return validator.validate(events)
