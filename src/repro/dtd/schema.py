"""The DTD object model.

A :class:`DTD` maps element names to :class:`ElementDeclaration` objects and
lazily derives, per element, the Glushkov automaton and the
:class:`~repro.dtd.constraints.OrderConstraints` that the scheduler and the
runtime engine consume.

DTDs are *local tree grammars*: the production used for an element is
determined by its tag name alone, which is why a single dictionary suffices.
The document root is not declared in a DTD; the engine introduces a virtual
``#ROOT`` element whose content model is exactly one occurrence of the chosen
root element (see :meth:`DTD.with_root`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentParticle,
    EmptyContent,
    Epsilon,
    MixedContent,
    PCDataContent,
    Star,
    Symbol,
    symbols_of,
)
from repro.dtd.constraints import OrderConstraints
from repro.dtd.errors import DTDError, UnknownElementError
from repro.dtd.glushkov import GlushkovAutomaton, build_glushkov

#: Name of the virtual element wrapping the document root.
ROOT_ELEMENT = "#ROOT"


@dataclass(frozen=True)
class ElementDeclaration:
    """One ``<!ELEMENT name content>`` declaration.

    ``content`` is either a :class:`~repro.dtd.ast.ContentParticle` or one of
    the special kinds (``EMPTY``, ``ANY``, ``(#PCDATA)``, mixed content).
    """

    name: str
    content: object

    @property
    def allows_text(self) -> bool:
        """Whether character data may appear among the children."""
        return isinstance(self.content, (AnyContent, PCDataContent, MixedContent))

    @property
    def is_element_only(self) -> bool:
        """Whether the element has pure element content (a regular expression)."""
        return isinstance(self.content, ContentParticle)

    def to_source(self) -> str:
        """Render the declaration in DTD syntax."""
        if isinstance(self.content, ContentParticle):
            body = self.content.to_source()
        else:
            body = self.content.to_source()
        return f"<!ELEMENT {self.name} {body}>"


class DTD:
    """A parsed DTD with cached constraint information per element."""

    def __init__(self, declarations: Iterable[ElementDeclaration], *, attlists: Optional[Mapping[str, Tuple[str, ...]]] = None):
        self._declarations: Dict[str, ElementDeclaration] = {}
        for declaration in declarations:
            if declaration.name in self._declarations:
                raise DTDError(f"element {declaration.name!r} declared twice")
            self._declarations[declaration.name] = declaration
        self._attlists: Dict[str, Tuple[str, ...]] = dict(attlists or {})
        self._automata: Dict[str, GlushkovAutomaton] = {}
        self._constraints: Dict[str, OrderConstraints] = {}
        self._root: Optional[str] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------ structure

    @property
    def element_names(self) -> Tuple[str, ...]:
        """All declared element names, in declaration order."""
        return tuple(name for name in self._declarations if name != ROOT_ELEMENT)

    @property
    def root_element(self) -> Optional[str]:
        """The document root element, if one was attached via :meth:`with_root`."""
        return self._root

    def __contains__(self, name: str) -> bool:
        return name in self._declarations

    def declaration(self, name: str) -> ElementDeclaration:
        """The declaration of ``name``; raises :class:`UnknownElementError`."""
        try:
            return self._declarations[name]
        except KeyError:
            raise UnknownElementError(f"element {name!r} is not declared in the DTD") from None

    def attributes_of(self, name: str) -> Tuple[str, ...]:
        """Attribute names declared for ``name`` via ``<!ATTLIST>`` (informational)."""
        return self._attlists.get(name, ())

    def with_root(self, root_name: str) -> "DTD":
        """Return a copy of this DTD extended with the virtual ``#ROOT`` element.

        The virtual root has content model "exactly one ``root_name``", which
        is what gives the scheduler the (trivially true) order and cardinality
        constraints for the document element itself.
        """
        if root_name not in self._declarations:
            raise UnknownElementError(f"root element {root_name!r} is not declared in the DTD")
        declarations = list(self._declarations.values())
        declarations = [decl for decl in declarations if decl.name != ROOT_ELEMENT]
        declarations.append(ElementDeclaration(ROOT_ELEMENT, Symbol(root_name)))
        copy = DTD(declarations, attlists=self._attlists)
        copy._root = root_name
        return copy

    # ---------------------------------------------------------- constraints

    def content_particle(self, name: str) -> ContentParticle:
        """The element's content model lowered to a plain regular expression."""
        declaration = self.declaration(name)
        content = declaration.content
        if isinstance(content, ContentParticle):
            return content
        if isinstance(content, (EmptyContent, PCDataContent)):
            return Epsilon()
        if isinstance(content, MixedContent):
            if not content.names:
                return Epsilon()
            return Star(Choice([Symbol(child) for child in content.names]))
        if isinstance(content, AnyContent):
            names = [child for child in self.element_names]
            if not names:
                return Epsilon()
            return Star(Choice([Symbol(child) for child in names]))
        raise TypeError(f"unsupported content model for {name!r}: {content!r}")

    def symbols(self, name: str) -> FrozenSet[str]:
        """``symb($x)`` -- tag names that may occur among the children of ``name``."""
        declaration = self.declaration(name)
        if isinstance(declaration.content, AnyContent):
            return frozenset(self.element_names)
        if isinstance(declaration.content, ContentParticle):
            return declaration.content.symbols()
        return symbols_of(declaration.content)

    def automaton(self, name: str) -> GlushkovAutomaton:
        """The (cached) Glushkov automaton of the element's content model."""
        if name not in self._automata:
            self._automata[name] = build_glushkov(self.content_particle(name))
        return self._automata[name]

    def constraints(self, name: str) -> OrderConstraints:
        """The (cached) :class:`OrderConstraints` of the element's content model."""
        if name not in self._constraints:
            self._constraints[name] = OrderConstraints(self.automaton(name))
        return self._constraints[name]

    def ord(self, element: str, first: str, second: str) -> bool:
        """``Ord_element(first, second)`` convenience accessor."""
        return self.constraints(element).ord(first, second)

    def allows_text(self, name: str) -> bool:
        """Whether character data may occur directly below ``name``.

        Unknown elements are treated permissively (text allowed); the
        validator reports them separately.
        """
        if name not in self._declarations:
            return True
        return self.declaration(name).allows_text

    # ------------------------------------------------------------- identity

    def fingerprint(self) -> str:
        """A stable content digest identifying this schema.

        Two :class:`DTD` objects with the same declarations (in the same
        order), the same ``<!ATTLIST>`` information and the same attached
        root produce the same fingerprint -- across processes and Python
        versions, since it hashes the canonical source rendering rather
        than any in-memory identity.  The session layer's plan cache keys
        compiled plans on ``(normalized query, fingerprint)``, so a schema
        change can never serve a stale plan.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for declaration in self._declarations.values():
                hasher.update(declaration.to_source().encode("utf-8"))
                hasher.update(b"\n")
            for name in sorted(self._attlists):
                attrs = ",".join(self._attlists[name])
                hasher.update(f"<!ATTLIST {name} {attrs}>\n".encode("utf-8"))
            hasher.update(f"root={self._root}".encode("utf-8"))
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # -------------------------------------------------------------- output

    def to_source(self) -> str:
        """Render the whole DTD in ``<!ELEMENT ...>`` syntax."""
        lines: List[str] = []
        for declaration in self._declarations.values():
            if declaration.name == ROOT_ELEMENT:
                continue
            lines.append(declaration.to_source())
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DTD({', '.join(self.element_names)})"
