"""Errors raised by the DTD substrate."""


class DTDError(Exception):
    """Base class for all DTD-related errors."""


class DTDSyntaxError(DTDError):
    """Raised when a DTD document cannot be parsed."""


class NotOneUnambiguousError(DTDError):
    """Raised when a content model is not one-unambiguous.

    DTD content models are required to be one-unambiguous (deterministic),
    which is what makes the Glushkov automaton deterministic and the
    constraint computations of Appendix B possible.
    """


class UnknownElementError(DTDError):
    """Raised when an element name is not declared in the DTD."""


class ValidationError(DTDError):
    """Raised (or recorded) when a document does not conform to the DTD."""
