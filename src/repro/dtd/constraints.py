"""Schema constraints derived from Glushkov automata (Section 2, Appendix B).

Everything the scheduling algorithm needs from the DTD is packaged in
:class:`OrderConstraints`:

* ``Ord(a, b)`` -- the order constraint "in every valid child sequence all
  ``a`` children occur before all ``b`` children",
* ``Past(q, a)`` -- after reaching automaton state ``q``, no ``a`` child can
  be encountered anymore,
* ``past_table(S)`` -- the per-state conjunction over a symbol set ``S``,
* cardinality constraints (``at_most_one``, ``at_least_one``) used by the
  Section-7 algebraic simplifications,
* :class:`FirstPastTracker`, the runtime object the validating stream layer
  uses to raise ``first-past`` punctuation events with one DFA transition and
  one table lookup per input token (Appendix B).

The reachability relation ``∆`` is computed over *non-empty* symbol sequences:
a state does not count as reachable from itself unless the automaton contains
an actual loop.  (Taking the reflexive closure, as a literal reading of the
appendix suggests, would make ``Past(q, a)`` false in the state reached right
after the last possible ``a`` -- contradicting the formal definition of
``Past_{ρ,S}`` in Section 2.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.dtd.glushkov import INITIAL_STATE, GlushkovAutomaton


class OrderConstraints:
    """Constraint relations of one content model.

    Instances are cheap to query (dictionary lookups); all relations are
    precomputed from the Glushkov automaton when the object is created, in
    time quadratic in the number of automaton states (Proposition 2.2).
    """

    def __init__(self, automaton: GlushkovAutomaton):
        self._automaton = automaton
        self._symbols = frozenset(automaton.alphabet)
        self._reachable = _transitive_successors(automaton)
        self._past = self._compute_past()
        self._ord = self._compute_ord()
        self._at_most_one = self._compute_at_most_one()
        self._at_least_one = self._compute_at_least_one()

    # ----------------------------------------------------------- relations

    @property
    def automaton(self) -> GlushkovAutomaton:
        """The underlying Glushkov automaton."""
        return self._automaton

    @property
    def symbols(self) -> FrozenSet[str]:
        """``symb(ρ)`` -- the tag names occurring in the content model."""
        return self._symbols

    def past(self, state: int, symbol: str) -> bool:
        """``Past_ρ(state, symbol)``: no ``symbol`` child can follow anymore.

        Symbols that do not occur in the content model are vacuously past.
        """
        if symbol not in self._symbols:
            return True
        return (state, symbol) in self._past

    def ord(self, first: str, second: str) -> bool:
        """``Ord_ρ(first, second)``: all ``first`` children precede all ``second`` children.

        Follows the formal definition of Section 2, under which the relation
        is vacuously true when either symbol cannot occur at all.
        """
        if first not in self._symbols or second not in self._symbols:
            return True
        return (first, second) in self._ord

    def ord_useful(self, first: str, second: str) -> bool:
        """Order constraint usable to *discharge a dependency* on ``first``.

        The scheduling algorithm drops a dependency symbol ``first`` from a
        ``past`` set when the arrival of ``second`` guarantees that all
        ``first`` items have been seen.  That guarantee only exists when
        ``second`` can actually occur in the content model; and it holds
        trivially when ``first`` cannot occur at all.  This is the variant of
        ``Ord`` the rewrite algorithm uses (see DESIGN.md, faithfulness
        notes).
        """
        if first not in self._symbols:
            return True
        if second not in self._symbols:
            return False
        return (first, second) in self._ord

    def order_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """All pairs ``(a, b)`` with ``Ord(a, b)`` and both symbols occurring."""
        return frozenset(self._ord)

    def past_table(self, symbols: Iterable[str]) -> Dict[int, bool]:
        """``PastTable_{ρ,S}``: per-state conjunction of ``past`` over ``S``."""
        wanted = tuple(symbols)
        return {
            state: all(self.past(state, symbol) for symbol in wanted)
            for state in self._automaton.states
        }

    # --------------------------------------------------------- cardinality

    def at_most_one(self, symbol: str) -> bool:
        """``symbol ∈ ||≤1``: no valid child sequence contains it twice."""
        if symbol not in self._symbols:
            return True
        return symbol in self._at_most_one

    def at_least_one(self, symbol: str) -> bool:
        """Every valid child sequence contains at least one ``symbol``."""
        if symbol not in self._symbols:
            return False
        return symbol in self._at_least_one

    def exactly_one(self, symbol: str) -> bool:
        """Every valid child sequence contains exactly one ``symbol``."""
        return self.at_most_one(symbol) and self.at_least_one(symbol)

    # -------------------------------------------------------------- helpers

    def first_past_tracker(self, symbols: Iterable[str]) -> "FirstPastTracker":
        """Create a runtime tracker for ``first-past(symbols)`` events."""
        return FirstPastTracker(self, symbols)

    # ----------------------------------------------------------- internals

    def _compute_past(self) -> Set[Tuple[int, str]]:
        past: Set[Tuple[int, str]] = set()
        label_states: Dict[str, Tuple[int, ...]] = {
            symbol: self._automaton.states_labelled(symbol) for symbol in self._symbols
        }
        for state in self._automaton.states:
            reachable = self._reachable[state]
            for symbol in self._symbols:
                if not any(target in reachable for target in label_states[symbol]):
                    past.add((state, symbol))
        return past

    def _compute_ord(self) -> Set[Tuple[str, str]]:
        constraints: Set[Tuple[str, str]] = set()
        for first in self._symbols:
            for second in self._symbols:
                states_second = self._automaton.states_labelled(second)
                if all((state, first) in self._past for state in states_second):
                    constraints.add((first, second))
        return constraints

    def _compute_at_most_one(self) -> Set[str]:
        result: Set[str] = set()
        for symbol in self._symbols:
            states = self._automaton.states_labelled(symbol)
            repeated = any(
                any(other in self._reachable[state] for other in states) for state in states
            )
            if not repeated:
                result.add(symbol)
        return result

    def _compute_at_least_one(self) -> Set[str]:
        result: Set[str] = set()
        for symbol in self._symbols:
            if not self._accepts_without(symbol):
                result.add(symbol)
        return result

    def _accepts_without(self, symbol: str) -> bool:
        """Whether some valid child sequence avoids ``symbol`` entirely."""
        seen = {INITIAL_STATE}
        stack = [INITIAL_STATE]
        while stack:
            state = stack.pop()
            if self._automaton.is_accepting(state):
                return True
            for transition_symbol, target in self._automaton.transitions.get(state, {}).items():
                if transition_symbol == symbol or target in seen:
                    continue
                seen.add(target)
                stack.append(target)
        return False


class FirstPastTracker:
    """Runtime tracker for ``first-past_{ρ,S}`` punctuation (Appendix B).

    The tracker is attached to one parent element while its children are being
    streamed.  Feed it the child labels in order via :meth:`advance`; it
    reports ``True`` exactly once -- at the earliest prefix after which no
    symbol of ``S`` can occur anymore.  If that point is never reached while
    children remain (or the constraint only becomes true at the very end), the
    engine forces the handler at end-of-children via :meth:`fire_at_end`.
    """

    def __init__(self, constraints: OrderConstraints, symbols: Iterable[str]):
        self._constraints = constraints
        self._automaton = constraints.automaton
        self._symbols = frozenset(symbols)
        self._table = constraints.past_table(self._symbols)
        self._state: Optional[int] = INITIAL_STATE
        self._fired = False

    @property
    def symbols(self) -> FrozenSet[str]:
        """The watched symbol set ``S``."""
        return self._symbols

    @property
    def fired(self) -> bool:
        """Whether the first-past event has already fired."""
        return self._fired

    def initial_fire(self) -> bool:
        """Check the ``i = 0`` case: ``S`` may already be impossible at the start."""
        if self._fired:
            return False
        if self._table.get(INITIAL_STATE, False):
            self._fired = True
            return True
        return False

    def advance(self, symbol: str) -> bool:
        """Consume the next child label; return ``True`` if first-past fires now."""
        if self._state is None:
            return False
        previous = self._state
        self._state = self._automaton.step(previous, symbol)
        if self._state is None:
            # Invalid with respect to the DTD; the validator reports this
            # separately.  No punctuation is generated on invalid input.
            return False
        if self._fired:
            return False
        if self._table.get(self._state, False) and not self._table.get(previous, False):
            self._fired = True
            return True
        return False

    def fire_at_end(self) -> bool:
        """Force the event at end-of-children if it has not fired yet."""
        if self._fired:
            return False
        self._fired = True
        return True


def _transitive_successors(automaton: GlushkovAutomaton) -> Dict[int, FrozenSet[int]]:
    """Transitive (non-reflexive) closure of the successor relation."""
    direct: Dict[int, Set[int]] = {
        state: set(automaton.successors(state)) for state in automaton.states
    }
    closure: Dict[int, FrozenSet[int]] = {}
    for state in automaton.states:
        seen: Set[int] = set()
        stack = list(direct[state])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(direct[node] - seen)
        closure[state] = frozenset(seen)
    return closure
