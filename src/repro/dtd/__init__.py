"""DTD substrate: content models, Glushkov automata and schema constraints.

The scheduling algorithm of the paper is driven entirely by information that
can be derived from a DTD:

* the **order constraints** ``Ord_rho(a, b)`` ("in every valid child sequence
  all ``a`` children occur before all ``b`` children", Section 2),
* the ``Past`` / ``first-past`` predicates used to generate punctuation
  events while validating the input stream (Appendix B),
* **cardinality constraints** such as ``a ∈ ||≤1`` used by the Section-7
  algebraic simplifications.

This package implements the full tool chain: parsing ``<!ELEMENT ...>``
declarations into content-model regular expressions, building the Glushkov
automaton of each (one-unambiguous) content model, deriving the constraint
relations from the automaton, and validating event streams while emitting
``on-first past(S)`` punctuation.
"""

from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentParticle,
    EmptyContent,
    MixedContent,
    Optional,
    PCDataContent,
    Plus,
    Sequence,
    Star,
    Symbol,
    symbols_of,
)
from repro.dtd.errors import DTDError, DTDSyntaxError, NotOneUnambiguousError, ValidationError
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD, ElementDeclaration
from repro.dtd.glushkov import GlushkovAutomaton, build_glushkov
from repro.dtd.constraints import OrderConstraints, FirstPastTracker
from repro.dtd.validator import StreamValidator

__all__ = [
    "AnyContent",
    "Choice",
    "ContentParticle",
    "DTD",
    "DTDError",
    "DTDSyntaxError",
    "ElementDeclaration",
    "EmptyContent",
    "FirstPastTracker",
    "GlushkovAutomaton",
    "MixedContent",
    "NotOneUnambiguousError",
    "Optional",
    "OrderConstraints",
    "PCDataContent",
    "Plus",
    "Sequence",
    "Star",
    "StreamValidator",
    "Symbol",
    "ValidationError",
    "build_glushkov",
    "parse_dtd",
    "symbols_of",
]
