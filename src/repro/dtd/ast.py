"""Content-model AST.

A DTD element declaration ``<!ELEMENT name content>`` associates a *content
particle* (an extended regular expression over tag names) with every element
name.  This module defines the particle AST plus the handful of structural
helpers (symbol collection, nullability, word matching by derivation) that the
Glushkov construction and the test suite need.

The special content kinds ``EMPTY``, ``ANY`` and mixed content
``(#PCDATA | a | ...)*`` are represented by dedicated marker classes; the
schema layer (:mod:`repro.dtd.schema`) lowers them to ordinary particles when
an automaton is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Sequence as SequenceType, Tuple


class ContentParticle:
    """Base class for content-model regular expressions."""

    def symbols(self) -> FrozenSet[str]:
        """The set of tag names occurring in the particle (``symb(ρ)``)."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Whether the empty word belongs to the language of the particle."""
        raise NotImplementedError

    def to_source(self) -> str:
        """Render the particle in DTD syntax."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_source()


@dataclass(frozen=True)
class Symbol(ContentParticle):
    """A single tag name."""

    name: str

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def nullable(self) -> bool:
        return False

    def to_source(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sequence(ContentParticle):
    """Concatenation ``(a, b, c)``."""

    items: Tuple[ContentParticle, ...]

    def __init__(self, items: SequenceType[ContentParticle]):
        object.__setattr__(self, "items", tuple(items))

    def symbols(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for item in self.items:
            out = out | item.symbols()
        return out

    def nullable(self) -> bool:
        return all(item.nullable() for item in self.items)

    def to_source(self) -> str:
        return "(" + ",".join(item.to_source() for item in self.items) + ")"


@dataclass(frozen=True)
class Choice(ContentParticle):
    """Alternation ``(a | b | c)``."""

    items: Tuple[ContentParticle, ...]

    def __init__(self, items: SequenceType[ContentParticle]):
        object.__setattr__(self, "items", tuple(items))

    def symbols(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for item in self.items:
            out = out | item.symbols()
        return out

    def nullable(self) -> bool:
        return any(item.nullable() for item in self.items)

    def to_source(self) -> str:
        return "(" + "|".join(item.to_source() for item in self.items) + ")"


@dataclass(frozen=True)
class Star(ContentParticle):
    """Kleene star ``x*``."""

    inner: ContentParticle

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols()

    def nullable(self) -> bool:
        return True

    def to_source(self) -> str:
        return self.inner.to_source() + "*"


@dataclass(frozen=True)
class Plus(ContentParticle):
    """One or more ``x+``."""

    inner: ContentParticle

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols()

    def nullable(self) -> bool:
        return self.inner.nullable()

    def to_source(self) -> str:
        return self.inner.to_source() + "+"


@dataclass(frozen=True)
class Optional(ContentParticle):
    """Zero or one ``x?``."""

    inner: ContentParticle

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols()

    def nullable(self) -> bool:
        return True

    def to_source(self) -> str:
        return self.inner.to_source() + "?"


@dataclass(frozen=True)
class Epsilon(ContentParticle):
    """The empty word (used to lower ``EMPTY`` and ``(#PCDATA)`` content)."""

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def to_source(self) -> str:
        return "EMPTY"


# --------------------------------------------------------------------------
# Special content kinds.  These are *not* regular expressions themselves; the
# schema layer lowers them.


@dataclass(frozen=True)
class EmptyContent:
    """``<!ELEMENT x EMPTY>`` -- no children, no text."""

    def to_source(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class AnyContent:
    """``<!ELEMENT x ANY>`` -- any declared elements and text, in any order."""

    def to_source(self) -> str:
        return "ANY"


@dataclass(frozen=True)
class PCDataContent:
    """``<!ELEMENT x (#PCDATA)>`` -- text only, no element children."""

    def to_source(self) -> str:
        return "(#PCDATA)"


@dataclass(frozen=True)
class MixedContent:
    """``<!ELEMENT x (#PCDATA | a | b)*`` -- text interleaved with elements."""

    names: Tuple[str, ...] = field(default=())

    def to_source(self) -> str:
        inner = "|".join(("#PCDATA",) + self.names)
        return f"({inner})*"


ContentModel = object  # Union of ContentParticle and the special kinds.


def symbols_of(model) -> FrozenSet[str]:
    """Symbols used by any content model (particle or special kind)."""
    if isinstance(model, ContentParticle):
        return model.symbols()
    if isinstance(model, MixedContent):
        return frozenset(model.names)
    if isinstance(model, (EmptyContent, PCDataContent)):
        return frozenset()
    if isinstance(model, AnyContent):
        raise ValueError("symbols of ANY content depend on the whole DTD; use DTD.symbols()")
    raise TypeError(f"not a content model: {model!r}")


def iter_particles(particle: ContentParticle) -> Iterator[ContentParticle]:
    """Depth-first iteration over all sub-particles (including the root)."""
    yield particle
    if isinstance(particle, (Sequence, Choice)):
        for item in particle.items:
            yield from iter_particles(item)
    elif isinstance(particle, (Star, Plus, Optional)):
        yield from iter_particles(particle.inner)


def particle_size(particle: ContentParticle) -> int:
    """Number of AST nodes; used as the ``|ρ|`` measure in complexity checks."""
    return sum(1 for _ in iter_particles(particle))


def matches_word(particle: ContentParticle, word: SequenceType[str]) -> bool:
    """Decide ``word ∈ L(particle)`` by Brzozowski derivatives.

    This is the *specification-level* matcher: slow but obviously correct.
    The engine uses the Glushkov automaton instead; the test suite
    cross-checks the two on random particles and words.
    """
    current = particle
    for symbol in word:
        current = _derivative(current, symbol)
        if current is None:
            return False
    return current.nullable()


def _derivative(particle: ContentParticle, symbol: str):
    """Brzozowski derivative of ``particle`` with respect to ``symbol``.

    Returns ``None`` for the empty language.
    """
    if isinstance(particle, Symbol):
        return Epsilon() if particle.name == symbol else None
    if isinstance(particle, Epsilon):
        return None
    if isinstance(particle, Choice):
        branches = [
            derived
            for derived in (_derivative(item, symbol) for item in particle.items)
            if derived is not None
        ]
        if not branches:
            return None
        if len(branches) == 1:
            return branches[0]
        return Choice(branches)
    if isinstance(particle, Sequence):
        if not particle.items:
            return None
        head, tail = particle.items[0], particle.items[1:]
        rest = Sequence(tail) if len(tail) > 1 else (tail[0] if tail else Epsilon())
        branches = []
        head_derived = _derivative(head, symbol)
        if head_derived is not None:
            branches.append(_sequence_of(head_derived, rest))
        if head.nullable():
            rest_derived = _derivative(rest, symbol)
            if rest_derived is not None:
                branches.append(rest_derived)
        if not branches:
            return None
        if len(branches) == 1:
            return branches[0]
        return Choice(branches)
    if isinstance(particle, Star):
        inner_derived = _derivative(particle.inner, symbol)
        if inner_derived is None:
            return None
        return _sequence_of(inner_derived, particle)
    if isinstance(particle, Plus):
        inner_derived = _derivative(particle.inner, symbol)
        if inner_derived is None:
            return None
        return _sequence_of(inner_derived, Star(particle.inner))
    if isinstance(particle, Optional):
        return _derivative(particle.inner, symbol)
    raise TypeError(f"not a content particle: {particle!r}")


def _sequence_of(left: ContentParticle, right: ContentParticle) -> ContentParticle:
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return Sequence([left, right])


def enumerate_words(particle: ContentParticle, max_length: int) -> Iterator[Tuple[str, ...]]:
    """Enumerate all words of ``L(particle)`` up to ``max_length``.

    Used by property tests to compare the derived constraint relations with a
    brute-force ground truth.  The enumeration explores words breadth-first
    over the alphabet of the particle.
    """
    alphabet = sorted(particle.symbols())
    frontier: list = [()]
    for length in range(max_length + 1):
        next_frontier = []
        for word in frontier:
            if len(word) == length:
                if matches_word(particle, word):
                    yield word
                if length < max_length:
                    for symbol in alphabet:
                        next_frontier.append(word + (symbol,))
        frontier = next_frontier
