"""Glushkov automaton construction for content models.

DTD content models are required to be *one-unambiguous* (Brüggemann-Klein and
Wood), which guarantees that the Glushkov automaton -- whose states are the
positions (marked symbol occurrences) of the regular expression plus one
initial state -- is deterministic.  The paper's Appendix B derives all schema
constraints (``Ord``, ``Past``, ``PastTable``, ``first-past``) from this
automaton, and the validating SAX layer simulates it to emit punctuation
events with one transition plus one table lookup per input token.

The construction follows the classic first/last/follow recipe:

* ``first(ρ)``  -- positions that can start a word,
* ``last(ρ)``   -- positions that can end a word,
* ``follow(ρ, p)`` -- positions that can immediately follow position ``p``.

State ``0`` is the initial state; every other state corresponds to one
position and is labelled with that position's symbol (the ``#`` operation of
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional as OptionalType, Sequence as SequenceType, Set, Tuple

from repro.dtd.ast import (
    Choice,
    ContentParticle,
    Epsilon,
    Optional,
    Plus,
    Sequence,
    Star,
    Symbol,
)
from repro.dtd.errors import NotOneUnambiguousError

#: The initial state of every Glushkov automaton.
INITIAL_STATE = 0


@dataclass
class _Positions:
    """Book-keeping for the marked regular expression."""

    symbols: List[str] = field(default_factory=list)

    def add(self, name: str) -> int:
        self.symbols.append(name)
        return len(self.symbols)

    def symbol_of(self, position: int) -> str:
        return self.symbols[position - 1]


@dataclass
class _Linearized:
    """first/last/follow data computed for a sub-particle."""

    nullable: bool
    first: FrozenSet[int]
    last: FrozenSet[int]


class GlushkovAutomaton:
    """Deterministic Glushkov automaton of a one-unambiguous content model.

    Attributes
    ----------
    states:
        ``range(0, n+1)`` where ``n`` is the number of positions.
    transitions:
        ``transitions[state][symbol] -> state``.
    accepting:
        The set of accepting states.
    """

    def __init__(
        self,
        position_symbols: SequenceType[str],
        transitions: Dict[int, Dict[str, int]],
        accepting: Set[int],
    ):
        self._position_symbols = tuple(position_symbols)
        self.transitions = transitions
        self.accepting = frozenset(accepting)
        self.states = tuple(range(len(position_symbols) + 1))
        self.alphabet = frozenset(position_symbols)

    # ------------------------------------------------------------ structure

    @property
    def initial(self) -> int:
        """The initial state."""
        return INITIAL_STATE

    def state_symbol(self, state: int) -> OptionalType[str]:
        """The symbol a (non-initial) state is labelled with (``q#``)."""
        if state == INITIAL_STATE:
            return None
        return self._position_symbols[state - 1]

    def states_labelled(self, symbol: str) -> Tuple[int, ...]:
        """All states labelled with ``symbol``."""
        return tuple(
            state for state in self.states if state != INITIAL_STATE and self.state_symbol(state) == symbol
        )

    def successors(self, state: int) -> Tuple[int, ...]:
        """Direct successor states of ``state``."""
        return tuple(self.transitions.get(state, {}).values())

    # ------------------------------------------------------------ execution

    def step(self, state: int, symbol: str) -> OptionalType[int]:
        """One DFA transition; ``None`` when the symbol is not allowed here."""
        return self.transitions.get(state, {}).get(symbol)

    def accepts(self, word: SequenceType[str]) -> bool:
        """Decide membership of ``word`` in the content model's language."""
        state = INITIAL_STATE
        for symbol in word:
            next_state = self.step(state, symbol)
            if next_state is None:
                return False
            state = next_state
        return state in self.accepting

    def is_accepting(self, state: int) -> bool:
        """Whether ``state`` is accepting (the child sequence may stop here)."""
        return state in self.accepting

    def allowed_symbols(self, state: int) -> FrozenSet[str]:
        """Symbols with an outgoing transition from ``state``."""
        return frozenset(self.transitions.get(state, {}))

    def __len__(self) -> int:
        return len(self.states)


def build_glushkov(particle: ContentParticle, *, check_deterministic: bool = True) -> GlushkovAutomaton:
    """Build the Glushkov automaton of ``particle``.

    Raises :class:`NotOneUnambiguousError` if the expression is not
    one-unambiguous (i.e. the automaton would not be deterministic) and
    ``check_deterministic`` is true.
    """
    positions = _Positions()
    follow: Dict[int, Set[int]] = {}
    info = _linearize(particle, positions, follow)

    transitions: Dict[int, Dict[str, int]] = {INITIAL_STATE: {}}
    for position in range(1, len(positions.symbols) + 1):
        transitions[position] = {}

    def add_transition(source: int, target: int) -> None:
        symbol = positions.symbol_of(target)
        existing = transitions[source].get(symbol)
        if existing is not None and existing != target:
            if check_deterministic:
                raise NotOneUnambiguousError(
                    f"content model {particle.to_source()} is not one-unambiguous: "
                    f"state {source} has two successors for symbol {symbol!r}"
                )
            return
        transitions[source][symbol] = target

    for position in info.first:
        add_transition(INITIAL_STATE, position)
    for source, targets in follow.items():
        for target in targets:
            add_transition(source, target)

    accepting: Set[int] = set(info.last)
    if info.nullable:
        accepting.add(INITIAL_STATE)

    return GlushkovAutomaton(positions.symbols, transitions, accepting)


def _linearize(particle: ContentParticle, positions: _Positions, follow: Dict[int, Set[int]]) -> _Linearized:
    """Recursive first/last/follow computation over the particle AST."""
    if isinstance(particle, Epsilon):
        return _Linearized(True, frozenset(), frozenset())
    if isinstance(particle, Symbol):
        position = positions.add(particle.name)
        follow.setdefault(position, set())
        only = frozenset({position})
        return _Linearized(False, only, only)
    if isinstance(particle, Choice):
        nullable = False
        first: Set[int] = set()
        last: Set[int] = set()
        for item in particle.items:
            info = _linearize(item, positions, follow)
            nullable = nullable or info.nullable
            first |= info.first
            last |= info.last
        return _Linearized(nullable, frozenset(first), frozenset(last))
    if isinstance(particle, Sequence):
        nullable = True
        first: Set[int] = set()
        last: Set[int] = set()
        previous_last: Set[int] = set()
        first_fixed = False
        for item in particle.items:
            info = _linearize(item, positions, follow)
            for source in previous_last:
                follow.setdefault(source, set()).update(info.first)
            if not first_fixed:
                first |= info.first
                if not info.nullable:
                    first_fixed = True
            if info.nullable:
                previous_last = previous_last | info.last
                last |= info.last
            else:
                previous_last = set(info.last)
                last = set(info.last)
            nullable = nullable and info.nullable
        return _Linearized(nullable, frozenset(first), frozenset(last))
    if isinstance(particle, (Star, Plus)):
        info = _linearize(particle.inner, positions, follow)
        for source in info.last:
            follow.setdefault(source, set()).update(info.first)
        nullable = True if isinstance(particle, Star) else info.nullable
        return _Linearized(nullable, info.first, info.last)
    if isinstance(particle, Optional):
        info = _linearize(particle.inner, positions, follow)
        return _Linearized(True, info.first, info.last)
    raise TypeError(f"not a content particle: {particle!r}")
