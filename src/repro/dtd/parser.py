"""Parser for DTD documents.

Supports the subset of DTD syntax the paper uses:

* ``<!ELEMENT name content>`` with content being ``EMPTY``, ``ANY``,
  ``(#PCDATA)``, mixed content ``(#PCDATA | a | b)*`` or an element content
  particle built from ``,`` (sequence), ``|`` (choice) and the ``? * +``
  modifiers,
* ``<!ATTLIST ...>`` declarations (recorded for information, since the
  attribute-expansion pass turns attributes into subelements anyway),
* comments and processing instructions (skipped).

The grammar for element content follows XML 1.0 (children / cp / choice /
seq), implemented as a small recursive-descent parser.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentParticle,
    EmptyContent,
    MixedContent,
    Optional as OptionalParticle,
    PCDataContent,
    Plus,
    Sequence,
    Star,
    Symbol,
)
from repro.dtd.errors import DTDSyntaxError
from repro.dtd.schema import DTD, ElementDeclaration

_NAME_EXTRA = set("_:.-")


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _Scanner:
    """Character-level scanner shared by the declaration and content parsers."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def eof(self) -> bool:
        return self.position >= len(self.text)

    def peek(self) -> str:
        return self.text[self.position] if self.position < len(self.text) else ""

    def skip_whitespace(self) -> None:
        while not self.eof() and self.text[self.position].isspace():
            self.position += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.position):
            raise DTDSyntaxError(
                f"expected {literal!r} at offset {self.position}: "
                f"...{self.text[self.position:self.position + 20]!r}"
            )
        self.position += len(literal)

    def try_consume(self, literal: str) -> bool:
        if self.text.startswith(literal, self.position):
            self.position += len(literal)
            return True
        return False

    def read_name(self) -> str:
        start = self.position
        while not self.eof() and _is_name_char(self.text[self.position]):
            self.position += 1
        if start == self.position:
            raise DTDSyntaxError(f"expected a name at offset {start}")
        return self.text[start:self.position]

    def skip_until(self, literal: str) -> None:
        index = self.text.find(literal, self.position)
        if index == -1:
            raise DTDSyntaxError(f"unterminated construct, expected {literal!r}")
        self.position = index + len(literal)


def parse_content_model(source: str):
    """Parse the content part of an ``<!ELEMENT>`` declaration."""
    scanner = _Scanner(source.strip())
    model = _parse_content(scanner)
    scanner.skip_whitespace()
    if not scanner.eof():
        raise DTDSyntaxError(f"trailing characters in content model: {scanner.text[scanner.position:]!r}")
    return model


def _parse_content(scanner: _Scanner):
    scanner.skip_whitespace()
    if scanner.try_consume("EMPTY"):
        return EmptyContent()
    if scanner.try_consume("ANY"):
        return AnyContent()
    if scanner.peek() != "(":
        raise DTDSyntaxError(f"content model must start with '(' or be EMPTY/ANY: {scanner.text!r}")
    # Lookahead for mixed content.
    saved = scanner.position
    scanner.expect("(")
    scanner.skip_whitespace()
    if scanner.try_consume("#PCDATA"):
        return _parse_mixed_tail(scanner)
    scanner.position = saved
    particle = _parse_cp(scanner)
    return particle


def _parse_mixed_tail(scanner: _Scanner):
    names: List[str] = []
    while True:
        scanner.skip_whitespace()
        if scanner.try_consume(")"):
            break
        scanner.expect("|")
        scanner.skip_whitespace()
        names.append(scanner.read_name())
    has_star = scanner.try_consume("*")
    if names and not has_star:
        raise DTDSyntaxError("mixed content with element names must end in ')*'")
    if not names:
        return PCDataContent()
    return MixedContent(tuple(names))


def _parse_cp(scanner: _Scanner) -> ContentParticle:
    """Parse a content particle: name or parenthesised group, plus modifier."""
    scanner.skip_whitespace()
    if scanner.try_consume("("):
        particle = _parse_group(scanner)
    else:
        particle = Symbol(scanner.read_name())
    return _apply_modifier(scanner, particle)


def _parse_group(scanner: _Scanner) -> ContentParticle:
    """Parse the inside of a parenthesised group (after the opening '(')."""
    items = [_parse_cp(scanner)]
    scanner.skip_whitespace()
    separator: Optional[str] = None
    while not scanner.try_consume(")"):
        if scanner.try_consume(","):
            current = ","
        elif scanner.try_consume("|"):
            current = "|"
        else:
            raise DTDSyntaxError(
                f"expected ',', '|' or ')' at offset {scanner.position} in content model"
            )
        if separator is None:
            separator = current
        elif separator != current:
            raise DTDSyntaxError("cannot mix ',' and '|' at the same nesting level")
        items.append(_parse_cp(scanner))
        scanner.skip_whitespace()
    if len(items) == 1:
        return items[0]
    if separator == "|":
        return Choice(items)
    return Sequence(items)


def _apply_modifier(scanner: _Scanner, particle: ContentParticle) -> ContentParticle:
    if scanner.try_consume("*"):
        return Star(particle)
    if scanner.try_consume("+"):
        return Plus(particle)
    if scanner.try_consume("?"):
        return OptionalParticle(particle)
    return particle


def parse_dtd(source: str) -> DTD:
    """Parse a DTD document into a :class:`~repro.dtd.schema.DTD`."""
    scanner = _Scanner(source)
    declarations: List[ElementDeclaration] = []
    attlists: Dict[str, Tuple[str, ...]] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.eof():
            break
        if scanner.try_consume("<!--"):
            scanner.skip_until("-->")
            continue
        if scanner.try_consume("<?"):
            scanner.skip_until("?>")
            continue
        if scanner.try_consume("<!ELEMENT"):
            scanner.skip_whitespace()
            name = scanner.read_name()
            scanner.skip_whitespace()
            end = scanner.text.find(">", scanner.position)
            if end == -1:
                raise DTDSyntaxError(f"unterminated <!ELEMENT {name} ...>")
            content_source = scanner.text[scanner.position:end]
            scanner.position = end + 1
            declarations.append(ElementDeclaration(name, parse_content_model(content_source)))
            continue
        if scanner.try_consume("<!ATTLIST"):
            scanner.skip_whitespace()
            name = scanner.read_name()
            end = scanner.text.find(">", scanner.position)
            if end == -1:
                raise DTDSyntaxError(f"unterminated <!ATTLIST {name} ...>")
            body = scanner.text[scanner.position:end]
            scanner.position = end + 1
            attribute_names = _attribute_names(body)
            existing = attlists.get(name, ())
            attlists[name] = existing + tuple(a for a in attribute_names if a not in existing)
            continue
        if scanner.try_consume("<!ENTITY") or scanner.try_consume("<!NOTATION"):
            scanner.skip_until(">")
            continue
        raise DTDSyntaxError(
            f"unexpected content at offset {scanner.position}: "
            f"{scanner.text[scanner.position:scanner.position + 30]!r}"
        )
    return DTD(declarations, attlists=attlists)


def _attribute_names(attlist_body: str) -> List[str]:
    """Extract attribute names from the body of an ``<!ATTLIST>`` declaration.

    The body is a sequence of ``name type default`` triples; we only keep the
    names.  Declared defaults in quotes may contain whitespace, so quoted
    regions are skipped as single tokens.
    """
    tokens: List[str] = []
    i = 0
    text = attlist_body
    while i < len(text):
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char in "\"'":
            end = text.find(char, i + 1)
            if end == -1:
                raise DTDSyntaxError("unterminated quoted value in <!ATTLIST>")
            tokens.append(text[i:end + 1])
            i = end + 1
            continue
        if char == "(":
            end = text.find(")", i + 1)
            if end == -1:
                raise DTDSyntaxError("unterminated enumeration in <!ATTLIST>")
            tokens.append(text[i:end + 1])
            i = end + 1
            continue
        start = i
        while i < len(text) and not text[i].isspace():
            i += 1
        tokens.append(text[start:i])
    names: List[str] = []
    index = 0
    while index + 1 < len(tokens):
        name = tokens[index]
        names.append(name)
        # Skip the type token (possibly an enumeration) and the default
        # declaration, which is either #REQUIRED/#IMPLIED or #FIXED "v" / "v".
        index += 2
        if index < len(tokens) and tokens[index] == "#FIXED":
            index += 2
        elif index < len(tokens) and (tokens[index].startswith('"') or tokens[index].startswith("'")):
            index += 1
        elif index < len(tokens) and tokens[index] in ("#REQUIRED", "#IMPLIED"):
            index += 1
    return names
