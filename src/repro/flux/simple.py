"""Simple expressions (Section 3.2).

A *simple expression* is an XQuery⁻ expression of the form ``α β γ`` where

* ``α`` and ``γ`` are possibly empty sequences of fixed strings and of
  expressions ``{if χ then s}`` (``s`` a fixed string),
* ``β`` is either empty, ``{$u}``, or ``{if χ then {$u}}`` for some variable
  ``$u``,
* if ``β`` is present, no atomic condition occurring in ``α β`` contains the
  variable ``$u``.

Simple expressions are exactly the XQuery⁻ expressions the streaming engine
can execute *immediately* when an ``on`` handler fires: the strings and the
conditional strings depend only on condition flags that are already decided,
and the optional ``{$u}`` copies the subtree of the element that triggered
the handler straight to the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.xquery.ast import (
    Condition,
    EmptyExpr,
    IfExpr,
    SequenceExpr,
    TextExpr,
    VarOutputExpr,
    XQExpr,
    condition_path_refs,
    sequence_items,
)


@dataclass(frozen=True)
class SimplePart:
    """One item of the prefix/suffix of a simple expression.

    ``condition`` is ``None`` for an unconditional fixed string.
    """

    text: str
    condition: Optional[Condition] = field(default=None)


@dataclass(frozen=True)
class SimpleDecomposition:
    """The ``α β γ`` decomposition of a simple expression."""

    prefix: Tuple[SimplePart, ...]
    copy_var: Optional[str]
    copy_condition: Optional[Condition]
    suffix: Tuple[SimplePart, ...]

    @property
    def has_copy(self) -> bool:
        """Whether the middle part ``β`` is present."""
        return self.copy_var is not None


def decompose_simple(expr: XQExpr) -> Optional[SimpleDecomposition]:
    """Return the decomposition of ``expr`` if it is simple, else ``None``."""
    items = sequence_items(expr)
    prefix: List[SimplePart] = []
    suffix: List[SimplePart] = []
    copy_var: Optional[str] = None
    copy_condition: Optional[Condition] = None
    seen_copy = False

    for item in items:
        part = _as_string_part(item)
        if part is not None:
            (suffix if seen_copy else prefix).append(part)
            continue
        copy = _as_copy_part(item)
        if copy is None or seen_copy:
            return None
        copy_var, copy_condition = copy
        seen_copy = True

    if copy_var is not None:
        # No atomic condition in the prefix or in the copy part may mention
        # the copied variable.
        for part in prefix:
            if part.condition is not None and _mentions_variable(part.condition, copy_var):
                return None
        if copy_condition is not None and _mentions_variable(copy_condition, copy_var):
            return None

    return SimpleDecomposition(tuple(prefix), copy_var, copy_condition, tuple(suffix))


def is_simple(expr: XQExpr) -> bool:
    """Whether ``expr`` is a simple expression."""
    return decompose_simple(expr) is not None


def _as_string_part(item: XQExpr) -> Optional[SimplePart]:
    if isinstance(item, EmptyExpr):
        return SimplePart("")
    if isinstance(item, TextExpr):
        return SimplePart(item.text)
    if isinstance(item, IfExpr) and isinstance(item.body, TextExpr):
        return SimplePart(item.body.text, item.condition)
    return None


def _as_copy_part(item: XQExpr) -> Optional[Tuple[str, Optional[Condition]]]:
    if isinstance(item, VarOutputExpr):
        return item.var, None
    if isinstance(item, IfExpr) and isinstance(item.body, VarOutputExpr):
        return item.body.var, item.condition
    if isinstance(item, SequenceExpr):
        return None
    return None


def _mentions_variable(condition: Condition, var: str) -> bool:
    return any(ref.var == var for ref in condition_path_refs(condition))
