"""Pretty printer for FluX expressions, following the paper's concrete syntax."""

from __future__ import annotations

from repro.flux.ast import FluxExpr, OnFirstHandler, OnHandler, ProcessStream, SimpleFlux
from repro.xquery.serialize import expression_to_source


def flux_to_source(expr: FluxExpr, *, indent: int = 0, shorthand: bool = True) -> str:
    """Render a FluX expression.

    ``shorthand`` uses ``ps`` instead of ``process-stream`` (as most of the
    paper's examples do).
    """
    pad = "  " * indent
    keyword = "ps" if shorthand else "process-stream"
    if isinstance(expr, SimpleFlux):
        return _indent_block(expression_to_source(expr.expr), pad)
    if isinstance(expr, ProcessStream):
        lines = []
        if expr.pre:
            lines.append(pad + expr.pre)
        lines.append(f"{pad}{{ {keyword} {expr.var}:")
        handler_lines = []
        for handler in expr.handlers:
            handler_lines.append(_handler_source(handler, indent + 1, shorthand))
        lines.append(";\n".join(handler_lines))
        lines.append(pad + "}")
        if expr.post:
            lines.append(pad + expr.post)
        return "\n".join(line for line in lines if line)
    raise TypeError(f"not a FluX expression: {expr!r}")


def _handler_source(handler, indent: int, shorthand: bool) -> str:
    pad = "  " * indent
    if isinstance(handler, OnFirstHandler):
        if handler.symbols is None:
            past = "*"
        else:
            past = ",".join(sorted(handler.symbols))
        body = _indent_block(expression_to_source(handler.body), pad + "  ")
        return f"{pad}on-first past({past}) return\n{body}"
    if isinstance(handler, OnHandler):
        body = flux_to_source(handler.body, indent=indent + 1, shorthand=shorthand)
        return f"{pad}on {handler.label} as {handler.var} return\n{body}"
    raise TypeError(f"not a FluX handler: {handler!r}")


def _indent_block(text: str, pad: str) -> str:
    return "\n".join(pad + line if line.strip() else line for line in text.splitlines())
