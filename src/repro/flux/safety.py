"""Safety of FluX queries (Definition 3.6).

A FluX query is *safe* with respect to a DTD when every XQuery⁻ subexpression
is only executed after all data items it refers to are guaranteed to have been
read from the stream (and hence sit in main-memory buffers).  The checker
walks all ``process-stream`` blocks and verifies, per handler, the two
conditions of Definition 3.6.

The checker uses the *formal* order-constraint relation
(:meth:`~repro.dtd.constraints.OrderConstraints.ord`, which is vacuously true
for symbols that cannot occur) -- the definition in the paper is stated in
those terms.  The rewrite algorithm is deliberately more conservative than
the definition requires, so everything it produces passes this check; the
checker exists so that hand-written FluX queries can be validated too and so
that the property tests can assert Theorem 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dtd.constraints import OrderConstraints
from repro.dtd.schema import DTD, ROOT_ELEMENT
from repro.flux.ast import (
    FluxExpr,
    OnFirstHandler,
    OnHandler,
    ProcessStream,
    SimpleFlux,
    maximal_xquery_subexpressions,
)
from repro.xquery.analysis import dependencies, free_variables, iter_subexpressions
from repro.xquery.ast import ROOT_VARIABLE, VarOutputExpr, XQExpr


@dataclass(frozen=True)
class SafetyViolation:
    """One violation of Definition 3.6."""

    variable: str
    handler: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"[{self.variable} :: {self.handler}] {self.message}"


def check_safety(expr: FluxExpr, dtd: DTD, *, root_var: str = ROOT_VARIABLE) -> List[SafetyViolation]:
    """Return all Definition-3.6 violations of ``expr`` (empty list = safe)."""
    violations: List[SafetyViolation] = []
    types: Dict[str, str] = {root_var: ROOT_ELEMENT, ROOT_VARIABLE: ROOT_ELEMENT}
    _check(expr, dtd, types, violations)
    return violations


def is_safe(expr: FluxExpr, dtd: DTD, *, root_var: str = ROOT_VARIABLE) -> bool:
    """Whether ``expr`` is safe w.r.t. ``dtd``."""
    return not check_safety(expr, dtd, root_var=root_var)


# ---------------------------------------------------------------------------


def _check(expr: FluxExpr, dtd: DTD, types: Dict[str, str], violations: List[SafetyViolation]) -> None:
    if isinstance(expr, SimpleFlux):
        return
    if not isinstance(expr, ProcessStream):
        raise TypeError(f"not a FluX expression: {expr!r}")

    var = expr.var
    element_type = types.get(var)
    constraints = dtd.constraints(element_type) if element_type in dtd else None
    symbols = dtd.symbols(element_type) if element_type in dtd else frozenset()

    for handler in expr.handlers:
        if isinstance(handler, OnFirstHandler):
            _check_on_first(var, handler, constraints, symbols, violations)
        else:
            _check_on(var, handler, constraints, violations)
            child_types = dict(types)
            child_types[handler.var] = handler.label
            _check(handler.body, dtd, child_types, violations)


def _past_set(handler: OnFirstHandler, symbols) -> frozenset:
    if handler.symbols is None:
        return frozenset(symbols)
    return handler.symbols


def _ord(constraints: Optional[OrderConstraints], first: str, second: str) -> bool:
    if constraints is None:
        return False
    return constraints.ord(first, second)


def _check_on_first(
    var: str,
    handler: OnFirstHandler,
    constraints: Optional[OrderConstraints],
    symbols,
    violations: List[SafetyViolation],
) -> None:
    handler_name = f"on-first past({'*' if handler.symbols is None else ','.join(sorted(handler.symbols))})"
    past = _past_set(handler, symbols)
    body = handler.body

    # Condition 1, first bullet: every dependency is covered by the past set.
    for dep in sorted(dependencies(var, body)):
        covered = dep in past or any(_ord(constraints, dep, anchor) for anchor in past)
        if not covered:
            violations.append(
                SafetyViolation(
                    var,
                    handler_name,
                    f"dependency {dep!r} of the handler body is not covered by past({sorted(past)})",
                )
            )

    # Condition 1, second bullet: whole-subtree outputs of free variables.
    free = free_variables(body)
    for sub in iter_subexpressions(body):
        if not isinstance(sub, VarOutputExpr) or sub.var not in free:
            continue
        if sub.var != var:
            violations.append(
                SafetyViolation(
                    var,
                    handler_name,
                    f"handler body outputs {{{sub.var}}} which is not the process-stream variable",
                )
            )
            continue
        for symbol in sorted(symbols):
            covered = symbol in past or any(_ord(constraints, symbol, anchor) for anchor in past)
            if not covered:
                violations.append(
                    SafetyViolation(
                        var,
                        handler_name,
                        f"handler outputs {{{var}}} but child symbol {symbol!r} may still arrive "
                        f"after past({sorted(past)})",
                    )
                )


def _check_on(
    var: str,
    handler: OnHandler,
    constraints: Optional[OrderConstraints],
    violations: List[SafetyViolation],
) -> None:
    handler_name = f"on {handler.label} as {handler.var}"
    for alpha in maximal_xquery_subexpressions(handler.body):
        for dep in sorted(dependencies(var, alpha)):
            if not _ord(constraints, dep, handler.label):
                violations.append(
                    SafetyViolation(
                        var,
                        handler_name,
                        f"dependency {dep!r} is not ordered before {handler.label!r} "
                        "in the parent's content model",
                    )
                )
    if isinstance(handler.body, SimpleFlux):
        alpha = handler.body.expr
        for sub in iter_subexpressions(alpha):
            if isinstance(sub, VarOutputExpr) and sub.var != handler.var:
                if sub.var in free_variables(alpha):
                    violations.append(
                        SafetyViolation(
                            var,
                            handler_name,
                            f"simple handler body outputs {{{sub.var}}} instead of the bound "
                            f"variable {handler.var}",
                        )
                    )
