"""FluX: the event-based query language and the scheduling rewrite.

This package contains the paper's primary contribution:

* :mod:`repro.flux.ast` -- FluX expressions (``process-stream`` blocks with
  ``on`` and ``on-first past(S)`` handlers, Definition 3.3),
* :mod:`repro.flux.simple` -- the "simple expression" classification of
  Section 3.2,
* :mod:`repro.flux.rewrite` -- the Figure-2 algorithm that turns a normalised
  XQuery⁻ query into an equivalent *safe* FluX query, scheduling event
  handlers with the DTD's order constraints so that buffering is minimised,
* :mod:`repro.flux.safety` -- the Definition-3.6 safety checker,
* :mod:`repro.flux.serialize` -- pretty printing in the paper's concrete
  syntax,
* :mod:`repro.flux.parser` -- a parser for that concrete syntax (useful for
  writing FluX queries by hand, as the paper does in its examples).
"""

from repro.flux.ast import (
    FluxExpr,
    OnFirstHandler,
    OnHandler,
    ProcessStream,
    SimpleFlux,
    iter_process_streams,
    maximal_xquery_subexpressions,
)
from repro.flux.errors import FluxError, UnschedulableQueryError
from repro.flux.rewrite import RewriteContext, rewrite_query, rewrite_to_flux
from repro.flux.safety import SafetyViolation, check_safety, is_safe
from repro.flux.serialize import flux_to_source
from repro.flux.simple import decompose_simple, is_simple
from repro.flux.parser import parse_flux

__all__ = [
    "FluxError",
    "FluxExpr",
    "OnFirstHandler",
    "OnHandler",
    "ProcessStream",
    "RewriteContext",
    "SafetyViolation",
    "SimpleFlux",
    "UnschedulableQueryError",
    "check_safety",
    "decompose_simple",
    "flux_to_source",
    "is_safe",
    "is_simple",
    "iter_process_streams",
    "maximal_xquery_subexpressions",
    "parse_flux",
    "rewrite_query",
    "rewrite_to_flux",
]
