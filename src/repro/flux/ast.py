"""FluX abstract syntax (Definition 3.3).

A FluX expression is either

* a *simple* XQuery⁻ expression (wrapped in :class:`SimpleFlux`), or
* ``s { process-stream $y: ζ } s'`` -- a :class:`ProcessStream` block over a
  variable ``$y`` with an ordered list of event handlers ``ζ``.

Event handlers come in two kinds:

* :class:`OnHandler` -- ``on a as $x return Q`` with ``Q`` again a FluX
  expression; fires for every child of ``$y`` labelled ``a``,
* :class:`OnFirstHandler` -- ``on-first past(S) return α`` with ``α`` an
  XQuery⁻ expression; fires exactly once, as soon as the DTD guarantees that
  no symbol of ``S`` can occur among the remaining children of ``$y``
  (``symbols=None`` encodes ``past(*)``, i.e. ``S = symb($y)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

from repro.xquery.ast import XQExpr


class FluxExpr:
    """Base class of FluX expressions."""

    def to_source(self) -> str:
        from repro.flux.serialize import flux_to_source

        return flux_to_source(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_source()


@dataclass(frozen=True)
class SimpleFlux(FluxExpr):
    """A simple XQuery⁻ expression used directly as a FluX expression."""

    expr: XQExpr


@dataclass(frozen=True)
class OnHandler:
    """``on label as $var return body``."""

    label: str
    var: str
    body: FluxExpr

    def handler_symbols(self) -> FrozenSet[str]:
        """Contribution of this handler to ``hsymb(ζ)``."""
        return frozenset({self.label})


@dataclass(frozen=True)
class OnFirstHandler:
    """``on-first past(S) return body``.

    ``symbols`` is the set ``S``; ``None`` stands for ``past(*)``
    (``S = symb($y)`` of the enclosing ``process-stream`` variable).
    """

    symbols: Optional[FrozenSet[str]]
    body: XQExpr

    def handler_symbols(self) -> FrozenSet[str]:
        """Contribution of this handler to ``hsymb(ζ)``."""
        if self.symbols is None:
            return frozenset()
        return self.symbols

    @property
    def is_past_all(self) -> bool:
        """Whether this handler is ``on-first past(*)``."""
        return self.symbols is None


Handler = Union[OnHandler, OnFirstHandler]


@dataclass(frozen=True)
class ProcessStream(FluxExpr):
    """``pre { process-stream $var: handlers } post``."""

    var: str
    handlers: Tuple[Handler, ...]
    pre: str = ""
    post: str = ""

    def __init__(self, var: str, handlers: Sequence[Handler], pre: str = "", post: str = ""):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "handlers", tuple(handlers))
        object.__setattr__(self, "pre", pre)
        object.__setattr__(self, "post", post)

    def on_handlers(self) -> Tuple[OnHandler, ...]:
        """The ``on`` handlers, in order."""
        return tuple(h for h in self.handlers if isinstance(h, OnHandler))

    def on_first_handlers(self) -> Tuple[OnFirstHandler, ...]:
        """The ``on-first`` handlers, in order."""
        return tuple(h for h in self.handlers if isinstance(h, OnFirstHandler))


def handler_symbols(handlers: Sequence[Handler]) -> FrozenSet[str]:
    """``hsymb(ζ)``: the symbols covered by a handler list (Section 4.2)."""
    out: FrozenSet[str] = frozenset()
    for handler in handlers:
        out = out | handler.handler_symbols()
    return out


def iter_process_streams(expr: FluxExpr) -> Iterator[ProcessStream]:
    """Iterate over all ``process-stream`` blocks of a FluX expression."""
    if isinstance(expr, SimpleFlux):
        return
    if isinstance(expr, ProcessStream):
        yield expr
        for handler in expr.handlers:
            if isinstance(handler, OnHandler):
                yield from iter_process_streams(handler.body)
    else:
        raise TypeError(f"not a FluX expression: {expr!r}")


def maximal_xquery_subexpressions(expr: FluxExpr) -> List[XQExpr]:
    """The maximal XQuery⁻ subexpressions of a FluX expression (Section 3.2).

    These are the XQuery⁻ expressions that are not contained in any larger
    XQuery⁻ expression: the bodies of ``on-first`` handlers, the bodies of
    ``on`` handlers that are simple, and the expression itself if the whole
    FluX expression is simple.
    """
    out: List[XQExpr] = []
    if isinstance(expr, SimpleFlux):
        out.append(expr.expr)
        return out
    if isinstance(expr, ProcessStream):
        for handler in expr.handlers:
            if isinstance(handler, OnFirstHandler):
                out.append(handler.body)
            else:
                out.extend(maximal_xquery_subexpressions(handler.body))
        return out
    raise TypeError(f"not a FluX expression: {expr!r}")
