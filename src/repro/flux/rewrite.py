"""The scheduling rewrite: XQuery⁻ → safe FluX (Section 4.2, Figure 2).

Given a DTD and a normalised XQuery⁻ query, :func:`rewrite_query` produces an
equivalent *safe* FluX query in which

* as many subexpressions as possible are attached to ``on`` handlers and are
  therefore executed in a purely streaming fashion (no buffering), and
* the remaining subexpressions are attached to ``on-first past(S)`` handlers
  with the smallest ``S`` the DTD's order constraints allow, which delays
  them no longer than necessary and keeps buffers small.

The recursion follows Figure 2 of the paper.  Two aspects are made explicit
here (see DESIGN.md, "faithfulness notes"):

* the ``¬Ord(b, a)`` filter of line 30 uses
  :meth:`~repro.dtd.constraints.OrderConstraints.ord_useful`, i.e. an order
  constraint only discharges a dependency when the triggering symbol can
  actually occur in the content model (this is what the paper's own Example
  4.6 requires);
* for a for-loop over a variable other than the parent variable (line 31 of
  Figure 2) the handler's ``past`` set is the full dependency set
  ``dependencies($x, α) ∪ H`` -- filtering it against the foreign loop symbol
  would be meaningless.

The rewrite expects the query in normal form; :func:`rewrite_query` takes
care of normalisation and of the Section-7 simplifications (which are what
makes re-rooted paths such as XMark Q8's ``/site/closed_auctions`` inside a
person loop schedulable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.dtd.constraints import OrderConstraints
from repro.dtd.errors import UnknownElementError
from repro.dtd.schema import DTD, ROOT_ELEMENT
from repro.flux.ast import (
    FluxExpr,
    OnFirstHandler,
    OnHandler,
    ProcessStream,
    SimpleFlux,
    handler_symbols,
)
from repro.flux.errors import UnschedulableQueryError
from repro.flux.simple import decompose_simple, is_simple
from repro.xquery.analysis import dependencies
from repro.xquery.ast import (
    ForExpr,
    ROOT_VARIABLE,
    VarOutputExpr,
    XQExpr,
    sequence_items,
)
from repro.xquery.normalize import is_normal_form, normalize
from repro.xquery.optimize import simplify


class RewriteContext:
    """Static context threaded through the rewrite recursion.

    Tracks the DTD element type every in-scope variable ranges over, so that
    ``Ord_$x`` and ``symb($x)`` can be resolved for the current parent
    variable.
    """

    def __init__(self, dtd: DTD, *, root_var: str = ROOT_VARIABLE):
        if ROOT_ELEMENT not in dtd:
            raise UnknownElementError(
                "the DTD has no virtual root; call DTD.with_root(<document element>) first"
            )
        self._dtd = dtd
        self._types: Dict[str, str] = {root_var: ROOT_ELEMENT, ROOT_VARIABLE: ROOT_ELEMENT}

    @property
    def dtd(self) -> DTD:
        """The DTD driving the rewrite."""
        return self._dtd

    def bind(self, var: str, element_type: str) -> "RewriteContext":
        """Return a copy of the context with ``var`` bound to ``element_type``."""
        clone = RewriteContext.__new__(RewriteContext)
        clone._dtd = self._dtd
        clone._types = dict(self._types)
        clone._types[var] = element_type
        return clone

    def element_type(self, var: str) -> Optional[str]:
        """The element type ``var`` is known to range over (if any)."""
        return self._types.get(var)

    def constraints_for(self, var: str) -> Optional[OrderConstraints]:
        """Order constraints of the content model of ``var``'s element type."""
        element_type = self._types.get(var)
        if element_type is None or element_type not in self._dtd:
            return None
        return self._dtd.constraints(element_type)

    def symbols_for(self, var: str) -> Optional[FrozenSet[str]]:
        """``symb($var)`` if the element type is known, else ``None``."""
        element_type = self._types.get(var)
        if element_type is None or element_type not in self._dtd:
            return None
        return self._dtd.symbols(element_type)


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of :func:`rewrite_to_flux`, keeping the intermediate stages."""

    flux: FluxExpr
    normalized: XQExpr
    simplified: XQExpr
    original: XQExpr
    root_var: str = field(default=ROOT_VARIABLE)


def rewrite_query(
    query: XQExpr,
    dtd: DTD,
    *,
    root_var: str = ROOT_VARIABLE,
    apply_normalization: bool = True,
    apply_simplifications: bool = True,
) -> FluxExpr:
    """Rewrite an XQuery⁻ query into an equivalent safe FluX query."""
    return rewrite_to_flux(
        query,
        dtd,
        root_var=root_var,
        apply_normalization=apply_normalization,
        apply_simplifications=apply_simplifications,
    ).flux


def rewrite_to_flux(
    query: XQExpr,
    dtd: DTD,
    *,
    root_var: str = ROOT_VARIABLE,
    apply_normalization: bool = True,
    apply_simplifications: bool = True,
) -> RewriteResult:
    """Full pipeline: normalise, simplify (Section 7) and schedule (Figure 2)."""
    normalized = normalize(query) if apply_normalization else query
    if not is_normal_form(normalized):
        raise UnschedulableQueryError("query is not in XQuery- normal form")
    simplified = simplify(normalized, dtd, root_var=root_var) if apply_simplifications else normalized
    context = RewriteContext(dtd, root_var=root_var)
    flux = _rewrite(context, root_var, frozenset(), simplified)
    return RewriteResult(
        flux=flux,
        normalized=normalized,
        simplified=simplified,
        original=query,
        root_var=root_var,
    )


# ---------------------------------------------------------------------------
# The Figure-2 recursion


def _rewrite(context: RewriteContext, parent_var: str, handled: FrozenSet[str], beta: XQExpr) -> FluxExpr:
    if _outputs_variable(beta, parent_var):
        # Line 5: {$x} occurs in β.
        if is_simple(beta) and not dependencies(parent_var, beta):
            return SimpleFlux(beta)
        return ProcessStream(parent_var, [OnFirstHandler(None, beta)])

    items = sequence_items(beta)
    if len(items) != 1:
        # Line 14: β = β1 β2 ... -- concatenate the handler lists, threading
        # the accumulated handler symbols H.
        handlers = []
        accumulated = frozenset(handled)
        for item in items:
            sub = _rewrite(context, parent_var, accumulated, item)
            sub_handlers = _handlers_of(sub, parent_var)
            handlers.extend(sub_handlers)
            accumulated = accumulated | handler_symbols(sub_handlers)
        return ProcessStream(parent_var, handlers)

    item = items[0]
    if isinstance(item, ForExpr):
        return _rewrite_for_loop(context, parent_var, handled, item)

    # Line 22: β is simple (a string or a conditional string).
    decomposition = decompose_simple(item)
    if decomposition is None:
        raise UnschedulableQueryError(
            f"cannot schedule subexpression under {parent_var}: {item.to_source()!r}"
        )
    if decomposition.has_copy:
        # The copied variable is not the parent variable (that case was
        # handled above), so its subtree cannot be complete when any handler
        # of this scope fires.
        raise UnschedulableQueryError(
            f"subexpression outputs {{{decomposition.copy_var}}} outside the scope of "
            f"{decomposition.copy_var}; the query cannot be scheduled safely"
        )
    past = frozenset(dependencies(parent_var, item) | handled)
    return ProcessStream(parent_var, [OnFirstHandler(past, item)])


def _rewrite_for_loop(
    context: RewriteContext, parent_var: str, handled: FrozenSet[str], loop: ForExpr
) -> FluxExpr:
    if len(loop.path) != 1:
        raise UnschedulableQueryError(
            f"for-loop over multi-step path {('/'.join(loop.path))!r} -- the query is not normalised"
        )
    symbol = loop.path[0]
    body = loop.body
    constraints = context.constraints_for(parent_var)
    deps = dependencies(parent_var, body) | handled

    # Line 30: X = {b in dependencies ∪ H | ¬Ord(b, a)}.
    if constraints is None:
        blocking = set(deps)
    else:
        blocking = {b for b in deps if not constraints.ord_useful(b, symbol)}
    # Conservative guard (see DESIGN.md): when an earlier handler of the same
    # scope already watches this symbol (a ∈ H), the loop's output may depend
    # on the triggering child itself (e.g. "{if year > 1991 then {$year}}"),
    # which cannot be decided while streaming the child.  Delay it instead.
    if symbol in handled:
        blocking.add(symbol)
    # A dependency on the loop's own symbol can never be discharged by the
    # (vacuously true, for single-occurrence content models) Ord(a, a): the
    # referenced data ``$x/a/...`` is being read *during* the very child a
    # streaming would execute under, so parts of it are incomplete whenever
    # a nested handler fires.  Buffer the loop instead.
    if symbol in deps:
        blocking.add(symbol)
    blocking = frozenset(blocking)

    if loop.source != parent_var:
        # Line 31: the loop iterates over another (ancestor) variable.  The
        # expression must wait until everything it depends on below the
        # parent variable has been seen.
        past = frozenset(dependencies(parent_var, body) | handled)
        return ProcessStream(parent_var, [OnFirstHandler(past, loop)])

    if blocking:
        # Line 34: buffer -- delay the whole loop until X ∪ {a} is past.
        return ProcessStream(parent_var, [OnFirstHandler(frozenset(blocking | {symbol}), loop)])

    # Line 36-39: stream -- attach the loop body to an ``on`` handler.
    child_context = context.bind(loop.var, symbol)
    rewritten_body = _rewrite(child_context, loop.var, frozenset(), body)
    return ProcessStream(parent_var, [OnHandler(symbol, loop.var, rewritten_body)])


# ---------------------------------------------------------------------------
# Helpers


def _outputs_variable(expr: XQExpr, var: str) -> bool:
    """Whether ``{$var}`` occurs as a subexpression of ``expr``."""
    from repro.xquery.analysis import iter_subexpressions

    return any(
        isinstance(sub, VarOutputExpr) and sub.var == var for sub in iter_subexpressions(expr)
    )


def _handlers_of(sub: FluxExpr, parent_var: str):
    if isinstance(sub, ProcessStream):
        if sub.var != parent_var:
            raise UnschedulableQueryError(
                f"internal error: expected a process-stream over {parent_var}, got {sub.var}"
            )
        return sub.handlers
    if isinstance(sub, SimpleFlux):
        # A sequence item that is itself a safe simple expression (no
        # dependencies): execute it as soon as possible.
        return (OnFirstHandler(frozenset(), sub.expr),)
    raise TypeError(f"not a FluX expression: {sub!r}")
