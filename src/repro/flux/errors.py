"""Errors raised by the FluX layer."""


class FluxError(Exception):
    """Base class for FluX-related errors."""


class FluxParseError(FluxError):
    """Raised when FluX concrete syntax cannot be parsed."""


class UnschedulableQueryError(FluxError):
    """Raised when a query cannot be scheduled safely for the given DTD.

    The typical cause is an output of a whole *ancestor* subtree (``{$u}``
    for a variable bound above the current scope) from inside a deeper
    scope -- evaluating it would require the ancestor's subtree to be
    complete while we are still inside it.
    """


class UnsafeQueryError(FluxError):
    """Raised when a FluX query fails the Definition-3.6 safety check."""
