"""Parser for FluX concrete syntax.

The rewrite algorithm produces FluX ASTs directly, but the paper presents its
examples in concrete syntax (``process-stream`` / ``ps`` blocks with ``on``
and ``on-first`` handlers).  This parser accepts that syntax so hand-written
FluX queries -- like the intro examples of the paper -- can be loaded,
safety-checked and executed.

Grammar (informal)::

    flux      := text* "{" ps-block "}" text*      -- at most one ps block per level
               | xquery-                            -- otherwise a simple expression
    ps-block  := ("process-stream" | "ps") VAR ":" handler (";" handler)*
    handler   := "on" NAME "as" VAR "return" flux
               | "on-first" "past" "(" [ "*" | NAME ("," NAME)* ] ")" "return" xquery-
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.flux.ast import FluxExpr, OnFirstHandler, OnHandler, ProcessStream, SimpleFlux
from repro.flux.errors import FluxParseError
from repro.xquery.parser import find_keyword, parse_query, split_mixed


def parse_flux(text: str) -> FluxExpr:
    """Parse FluX concrete syntax into a :class:`FluxExpr`."""
    parts = split_mixed(text)
    ps_chunks = [
        (index, chunk)
        for index, (kind, chunk) in enumerate(parts)
        if kind == "expr" and _is_ps_chunk(chunk)
    ]
    if not ps_chunks:
        return SimpleFlux(parse_query(text))
    if len(ps_chunks) > 1:
        raise FluxParseError("a FluX expression may contain at most one process-stream block per level")
    index, chunk = ps_chunks[0]
    pre = "".join(c for kind, c in parts[:index] if kind == "text").strip()
    post = "".join(c for kind, c in parts[index + 1:] if kind == "text").strip()
    if any(kind == "expr" for kind, _ in parts[:index]) or any(
        kind == "expr" for kind, _ in parts[index + 1:]
    ):
        raise FluxParseError(
            "only fixed strings may surround a process-stream block (Definition 3.3)"
        )
    var, handlers = _parse_ps_block(chunk)
    return ProcessStream(var, handlers, pre=pre, post=post)


def _is_ps_chunk(chunk: str) -> bool:
    stripped = chunk.strip()
    return stripped.startswith("process-stream") or (
        stripped.startswith("ps") and (len(stripped) == 2 or not stripped[2].isalnum())
    )


def _parse_ps_block(chunk: str) -> Tuple[str, List]:
    stripped = chunk.strip()
    if stripped.startswith("process-stream"):
        rest = stripped[len("process-stream"):]
    elif stripped.startswith("ps"):
        rest = stripped[len("ps"):]
    else:  # pragma: no cover - guarded by _is_ps_chunk
        raise FluxParseError(f"not a process-stream block: {chunk!r}")
    colon = _find_top_level(rest, ":")
    if colon == -1:
        raise FluxParseError(f"process-stream block without ':': {chunk!r}")
    var = rest[:colon].strip()
    if not var.startswith("$"):
        raise FluxParseError(f"process-stream must bind a variable, got {var!r}")
    handler_text = rest[colon + 1:]
    handlers = [
        _parse_handler(part) for part in _split_top_level(handler_text, ";") if part.strip()
    ]
    if not handlers:
        raise FluxParseError("process-stream block with no handlers")
    return var, handlers


def _parse_handler(text: str):
    stripped = text.strip()
    if stripped.startswith("on-first"):
        return _parse_on_first(stripped)
    if stripped.startswith("on"):
        return _parse_on(stripped)
    raise FluxParseError(f"cannot parse event handler: {text!r}")


def _parse_on_first(text: str) -> OnFirstHandler:
    rest = text[len("on-first"):].strip()
    if not rest.startswith("past"):
        raise FluxParseError(f"on-first handler must use past(...): {text!r}")
    rest = rest[len("past"):].strip()
    if not rest.startswith("("):
        raise FluxParseError(f"on-first past requires parentheses: {text!r}")
    closing = rest.find(")")
    if closing == -1:
        raise FluxParseError(f"unterminated past(...) in {text!r}")
    inside = rest[1:closing].strip()
    return_pos = find_keyword(rest, "return", closing)
    if return_pos == -1:
        raise FluxParseError(f"on-first handler without 'return': {text!r}")
    body = parse_query(rest[return_pos + len("return"):])
    if inside == "*":
        symbols: Optional[frozenset] = None
    elif not inside:
        symbols = frozenset()
    else:
        symbols = frozenset(name.strip() for name in inside.split(",") if name.strip())
    return OnFirstHandler(symbols, body)


def _parse_on(text: str) -> OnHandler:
    rest = text[len("on"):].strip()
    as_pos = find_keyword(rest, "as")
    if as_pos == -1:
        raise FluxParseError(f"on handler without 'as': {text!r}")
    label = rest[:as_pos].strip()
    return_pos = find_keyword(rest, "return", as_pos)
    if return_pos == -1:
        raise FluxParseError(f"on handler without 'return': {text!r}")
    var = rest[as_pos + len("as"):return_pos].strip()
    if not var.startswith("$"):
        raise FluxParseError(f"on handler must bind a variable, got {var!r}")
    body = parse_flux(rest[return_pos + len("return"):])
    return OnHandler(label, var, body)


# ---------------------------------------------------------------------------
# Top-level text utilities (brace- and quote-aware)


def _find_top_level(text: str, char: str) -> int:
    depth = 0
    i = 0
    while i < len(text):
        current = text[i]
        if current in "\"'":
            closing = text.find(current, i + 1)
            if closing == -1:
                raise FluxParseError(f"unterminated string in {text!r}")
            i = closing + 1
            continue
        if current == "{":
            depth += 1
        elif current == "}":
            depth -= 1
        elif depth == 0 and current == char:
            return i
        i += 1
    return -1


def _split_top_level(text: str, separator: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    start = 0
    i = 0
    while i < len(text):
        current = text[i]
        if current in "\"'":
            closing = text.find(current, i + 1)
            if closing == -1:
                raise FluxParseError(f"unterminated string in {text!r}")
            i = closing + 1
            continue
        if current == "{":
            depth += 1
        elif current == "}":
            depth -= 1
        elif depth == 0 and current == separator:
            parts.append(text[start:i])
            start = i + 1
        i += 1
    parts.append(text[start:])
    return parts
