"""Continuous document feeds: one prepared query over an endless stream.

The paper frames streaming around "documents that arrive on a network",
and a network rarely delivers exactly one.  A :class:`FeedHandle` is the
long-lived counterpart of a single-document push run
(:class:`~repro.engine.engine.RunHandle`): one handle consumes an
unbounded stream of *concatenated* documents (optionally separated by
whitespace), cut into chunks at arbitrary byte positions -- including
splits that straddle a document boundary or fall inside a multi-byte
UTF-8 sequence.

Lifecycle
---------
Each document runs in a fresh inner push run over the engine's shared
compiled plan: tokenizer/projector cursors, the run's statistics and its
buffer-attribution ledger all start from zero at every boundary, and the
inner run's ``finish()`` releases every buffer it charged against the
(shared) memory governor.  Live bytes therefore return to the same floor
after every document -- the invariant that makes bounded-memory claims
meaningful over millions of documents, and the one the conformance
oracle and the feed soak assert.

Framing and punctuation
-----------------------
``feed(chunk)`` returns the :class:`DocumentResult`\\ s that *completed*
within that chunk (zero or many -- a single chunk may close several
small documents); an ``on_document`` callback receives each one as it
seals.  ``on_heartbeat`` fires every
:attr:`~repro.core.options.FeedOptions.heartbeat_interval_bytes` fed
bytes with a progress snapshot, as punctuation on otherwise-quiet
streams.

Crash-safe resume
-----------------
:attr:`FeedHandle.resume_offset` is always the exact byte offset just
past the last *completed* document.  It is exposed live (the handle, the
``/progress`` endpoint, crash dumps via the inner run's annotations) so
a restarted feed can pass it as ``resume_from`` and skip the
already-processed prefix of the same stream; replayed output is
byte-identical to the uninterrupted run.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import List, Optional

from repro.core.options import DEFAULT_OPTIONS, ExecutionOptions, FeedOptions
from repro.engine.engine import FluxRunResult
from repro.obs import recorder as _flight
from repro.obs import serve as _serve
from repro.obs.runtime import (
    record_feed_document,
    record_feed_finished,
    record_feed_heartbeat,
)

#: Padding accepted (and skipped, charged to the stream offset) between
#: documents: the four XML whitespace bytes.
_INTERDOC_WS = b" \t\r\n"


@dataclass(frozen=True)
class DocumentResult:
    """One completed document of a feed: framing offsets plus its result.

    ``start_offset`` / ``end_offset`` are absolute byte offsets into the
    stream: the first byte of the document's markup and the byte just past
    its root close tag.  ``end_offset`` is exactly the feed's
    ``resume_offset`` after this document sealed.
    """

    index: int
    start_offset: int
    end_offset: int
    result: FluxRunResult


@dataclass(frozen=True)
class FeedResult:
    """Summary of a finished feed."""

    documents_completed: int
    resume_offset: int
    bytes_fed: int


class FeedHandle:
    """One in-flight continuous feed: documents in, framed results out.

    Typical usage::

        with prepared.open_feed(on_document=handle_doc) as feed:
            for chunk in socket_chunks:
                feed.feed(chunk)
        print(feed.result.documents_completed)

    The context manager finishes on a clean exit (raising if the stream
    ends mid-document, exactly like a single-document push run) and aborts
    on an exception -- :attr:`resume_offset` still reports the last
    completed boundary either way, which is what a restart passes as
    ``resume_from``.
    """

    def __init__(
        self,
        engine,
        *,
        sink=None,
        options: Optional[ExecutionOptions] = None,
        governor=None,
        owns_governor: bool = False,
        on_finish=None,
        on_document=None,
        on_heartbeat=None,
        resume_from: Optional[int] = None,
    ):
        self._engine = engine
        self._sink = sink
        self._options = options if options is not None else DEFAULT_OPTIONS
        feed_options = self._options.feed if self._options.feed is not None else FeedOptions()
        if resume_from is None:
            resume_from = feed_options.resume_offset
        if resume_from < 0:
            raise ValueError(f"resume_from must be >= 0, got {resume_from}")
        self._on_finish = on_finish
        self._on_document = on_document
        self._on_heartbeat = on_heartbeat
        self._governor = governor
        self._state = "open"
        self._run = None
        # Absolute stream cursors, all in bytes: ``_cursor`` is the offset
        # of the next byte to consume, ``_skip`` the resume prefix still to
        # discard, ``_doc_start`` the open document's first byte,
        # ``_resume_offset`` the boundary of the last completed document.
        self._cursor = 0
        self._skip = resume_from
        self._doc_start = resume_from
        self._resume_offset = resume_from
        self._bytes_fed = 0
        self._chunks_fed = 0
        self._documents_completed = 0
        self._heartbeat_every = feed_options.heartbeat_interval_bytes
        self._next_heartbeat = self._heartbeat_every
        #: The finished feed's summary; set by :meth:`finish`.
        self.result: Optional[FeedResult] = None
        self._fastpath = engine._pipeline_for(self._options) is not engine.pipeline
        # An abandoned handle must still release an owned governor's spill
        # file; the finalizer references only the governor.
        if owns_governor and governor is not None:
            self._finalizer = weakref.finalize(self, governor.close)
        else:
            self._finalizer = None
        _flight.RECORDER.note("feed-begin", self._fastpath, resume_from)
        self._progress_key = _serve.register_run(self._progress)

    # ------------------------------------------------------------ watermarks

    @property
    def documents_completed(self) -> int:
        """Documents sealed by this handle (not counting a resumed prefix)."""
        return self._documents_completed

    @property
    def resume_offset(self) -> int:
        """Byte offset just past the last completed document.

        Feed the same stream to a new handle with ``resume_from=<this>``
        to skip everything already processed.
        """
        return self._resume_offset

    @property
    def bytes_fed(self) -> int:
        return self._bytes_fed

    def _progress(self) -> dict:
        """One JSON-ready watermark snapshot for the /progress endpoint."""
        return {
            "mode": "feed",
            "state": self._state,
            "fastpath": self._fastpath,
            "bytes_fed": self._bytes_fed,
            "chunks_fed": self._chunks_fed,
            "documents_completed": self._documents_completed,
            "resume_offset": self._resume_offset,
            "document_start_offset": self._doc_start,
            "document_offset": self._cursor,
        }

    # ----------------------------------------------------------------- feed

    def feed(self, chunk) -> List[DocumentResult]:
        """Consume one stream chunk; returns the documents that completed.

        Text chunks are encoded to UTF-8 first, so every offset this
        handle reports is a true byte offset whatever mix of ``str`` and
        ``bytes`` the caller feeds.
        """
        if self._state != "open":
            raise RuntimeError(f"cannot feed a {self._state} feed")
        data = chunk.encode("utf-8") if isinstance(chunk, str) else bytes(chunk)
        self._bytes_fed += len(data)
        self._chunks_fed += 1
        if self._skip:
            drop = min(self._skip, len(data))
            self._cursor += drop
            self._skip -= drop
            data = data[drop:]
        completed: List[DocumentResult] = []
        while data:
            if self._run is None:
                stripped = data.lstrip(_INTERDOC_WS)
                self._cursor += len(data) - len(stripped)
                data = stripped
                if not data:
                    break
                self._open_run()
            run = self._run
            try:
                run.feed(data)
            except Exception:
                # The inner run already dumped a crash snapshot (with this
                # document's exact offsets) and released its buffers.
                self._run = None
                self.close()
                raise
            pipeline_feed = run._feed
            if not pipeline_feed.root_closed:
                self._cursor += len(data)
                break
            remainder = pipeline_feed.take_remainder()
            boundary = self._cursor + len(data) - len(remainder)
            try:
                result = run.finish()
            except Exception:
                self._run = None
                self.close()
                raise
            self._run = None
            self._cursor = boundary
            data = remainder
            completed.append(self._seal_document(boundary, result))
        self._maybe_heartbeat()
        return completed

    def finish(self) -> FeedResult:
        """End of stream: flush, validate, release resources.

        Raises when the stream ends inside a document -- the same
        truncation errors a single-document push run raises, including the
        incomplete-trailing-UTF-8-sequence case.
        """
        if self._state == "finished":
            return self.result
        if self._state != "open":
            raise RuntimeError("cannot finish a closed feed")
        if self._run is not None:
            run = self._run
            try:
                result = run.finish()
            except Exception:
                self._run = None
                self.close()
                raise
            # Only reachable if the document completed exactly at stream
            # end without the boundary being observed; seal it normally.
            self._run = None
            self._seal_document(self._cursor, result)
        self._state = "finished"
        self._teardown()
        record_feed_finished()
        _flight.RECORDER.note("feed-finish", self._documents_completed, self._resume_offset)
        self.result = FeedResult(
            documents_completed=self._documents_completed,
            resume_offset=self._resume_offset,
            bytes_fed=self._bytes_fed,
        )
        return self.result

    def close(self) -> None:
        """Abort an unfinished feed, releasing the open document's buffers.

        Idempotent.  :attr:`resume_offset` keeps reporting the last
        completed boundary, so a closed (or crashed) feed can be resumed.
        """
        run, self._run = self._run, None
        if run is not None:
            run.close()
        if self._state == "open":
            self._state = "closed"
        _serve.unregister_run(self._progress_key)
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "FeedHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._state == "open":
            self.finish()
        else:
            self.close()

    # ------------------------------------------------------------ internals

    def _open_run(self) -> None:
        self._doc_start = self._cursor
        self._run = self._engine.open_run(
            sink=self._sink,
            options=self._options,
            governor=self._governor,
            owns_governor=False,
            on_finish=self._on_finish,
            stop_at_root_close=True,
            annotations={
                "document_index": self._documents_completed,
                "document_start_offset": self._doc_start,
                "resume_offset": self._resume_offset,
            },
        )

    def _seal_document(self, boundary: int, result: FluxRunResult) -> DocumentResult:
        document = DocumentResult(
            index=self._documents_completed,
            start_offset=self._doc_start,
            end_offset=boundary,
            result=result,
        )
        self._documents_completed += 1
        self._resume_offset = boundary
        record_feed_document()
        _flight.RECORDER.note("doc-boundary", document.index, boundary)
        if self._on_document is not None:
            self._on_document(document)
        return document

    def _maybe_heartbeat(self) -> None:
        if self._on_heartbeat is None:
            return
        if self._bytes_fed < self._next_heartbeat:
            return
        while self._bytes_fed >= self._next_heartbeat:
            self._next_heartbeat += self._heartbeat_every
        record_feed_heartbeat()
        self._on_heartbeat(self._progress())

    def _teardown(self) -> None:
        _serve.unregister_run(self._progress_key)
        if self._finalizer is not None:
            self._finalizer()


__all__ = ["DocumentResult", "FeedHandle", "FeedResult"]
