"""The spill store: a temp-file backed, page-granular byte store.

One :class:`SpillStore` backs one :class:`~repro.storage.governor.MemoryGovernor`
(and therefore one run, or one shared multi-query pass).  It is append-only:
evicted pages are written at the current tail and addressed by
``(offset, length)`` handles.  Sealed pages are immutable, so a page's
payload never has to be rewritten; freeing a handle only updates the
free-byte accounting.  The backing file is created lazily on the first
spill -- a run whose working set fits the budget never touches disk -- and
is an anonymous ``TemporaryFile``, so the operating system reclaims it even
on abnormal exit.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PageHandle:
    """Address of one spilled page inside the store's backing file."""

    offset: int
    length: int


class SpillStore:
    """Append-only page store over one anonymous temporary file."""

    def __init__(self, directory: Optional[str] = None):
        self._directory = directory
        self._file = None
        self._tail = 0
        #: Bytes ever written (monotone; the backing file's size).
        self.bytes_written = 0
        #: Bytes ever read back.
        self.bytes_read = 0
        #: Bytes belonging to freed handles (dead space in the file).
        self.bytes_freed = 0
        self.pages_written = 0
        self.pages_read = 0

    # ----------------------------------------------------------------- state

    @property
    def live_bytes(self) -> int:
        """Bytes of the file still addressed by un-freed handles."""
        return self.bytes_written - self.bytes_freed

    @property
    def is_open(self) -> bool:
        """Whether the backing file exists (false until the first write)."""
        return self._file is not None

    # ------------------------------------------------------------------- I/O

    def write(self, payload: bytes) -> PageHandle:
        """Append one page payload; returns its handle."""
        if self._file is None:
            self._file = tempfile.TemporaryFile(
                prefix="repro-spill-", dir=self._directory
            )
        handle = PageHandle(self._tail, len(payload))
        self._file.seek(self._tail)
        self._file.write(payload)
        self._tail += len(payload)
        self.bytes_written += len(payload)
        self.pages_written += 1
        return handle

    def read(self, handle: PageHandle) -> bytes:
        """Read one page payload back."""
        if self._file is None:
            raise RuntimeError("spill store has no backing file; nothing was written")
        self._file.seek(handle.offset)
        payload = self._file.read(handle.length)
        if len(payload) != handle.length:
            raise RuntimeError(
                f"short read from spill store: wanted {handle.length} bytes "
                f"at offset {handle.offset}, got {len(payload)}"
            )
        self.bytes_read += handle.length
        self.pages_read += 1
        return payload

    def free(self, handle: PageHandle) -> None:
        """Mark a handle's bytes as dead (space accounting only)."""
        self.bytes_freed += handle.length

    def close(self) -> None:
        """Close and delete the backing file.  Idempotent."""
        if self._file is not None:
            self._file.close()
            self._file = None
