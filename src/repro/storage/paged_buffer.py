"""A spillable event buffer with the :class:`EventBuffer` surface.

:class:`PagedEventBuffer` is a drop-in replacement for
:class:`~repro.engine.buffers.EventBuffer` produced by the
:meth:`~repro.storage.governor.MemoryGovernor.make_buffer` factory.  The
executor appends to it, handlers materialize it, and the scope release
frees it exactly as before; the difference is purely internal:

* contents are split into **pages** of roughly ``governor.page_bytes``
  logical bytes.  A page that reaches the limit is *sealed* (immutable)
  and handed to the governor's LRU; appends continue on a fresh tail page,
* the governor may **evict** sealed pages to the spill store at any time;
  reading the buffer (iteration, ``to_tree`` / ``to_single_node`` when a
  handler flushes it) decodes spilled pages transparently, one page at a
  time, without re-admitting them -- resident memory stays under the
  budget even while a larger-than-budget buffer is being materialized,
* logical accounting (``record_buffered`` / ``record_freed``, the
  quantities the paper's figures report) is byte-identical to the plain
  buffer; residency, spills and faults are tracked separately.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.xmlstream.events import Event
from repro.xmlstream.tree import XMLNode, events_to_tree, events_to_wrapped_tree


class Page:
    """One contiguous slice of a buffer's events.

    ``events`` is the resident list, or ``None`` once the page is spilled
    (then ``handle`` addresses the payload in the spill store).  ``cost``
    and ``count`` are the slice's logical totals; ``stats`` is the owning
    run's statistics, where spills and faults of this page are attributed,
    and ``owner`` the buffer's attribution ledger (spilled bytes are
    charged to it when the governor evicts the page).
    """

    __slots__ = ("events", "count", "cost", "sealed", "handle", "stats", "owner")

    def __init__(self, stats, owner=None):
        self.events: Optional[List[Event]] = []
        self.count = 0
        self.cost = 0
        self.sealed = False
        self.handle = None
        self.stats = stats
        self.owner = owner


class PagedEventBuffer:
    """A list of SAX events split into governor-managed pages."""

    def __init__(self, manager, governor, name: str = ""):
        self._manager = manager
        self._stats = manager.stats
        self._owner = manager.attribution.ledger(name)
        self._governor = governor
        self._page_bytes = governor.page_bytes
        self._pages: List[Page] = []
        self._open: Optional[Page] = None
        self._count = 0
        self._cost = 0
        self._released = False
        self.name = name

    # -------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Event]:
        read = self._governor.read_page
        for page in self._pages:
            yield from read(page)

    @property
    def events(self) -> List[Event]:
        """The buffered events as one freshly-materialized list.

        Materializes every page (spilled pages are decoded transiently);
        prefer iteration on hot paths.  Unlike :class:`EventBuffer`, the
        returned list is a *copy*: mutating it does not drain the buffer.
        """
        return list(self)

    @property
    def cost_bytes(self) -> int:
        """Logical memory footprint of the buffered events (spilled or not)."""
        return self._cost

    @property
    def resident_bytes(self) -> int:
        """Bytes of this buffer currently held in memory."""
        return sum(page.cost for page in self._pages if page.events is not None)

    @property
    def spilled_pages(self) -> int:
        """Number of this buffer's pages currently on disk."""
        return sum(1 for page in self._pages if page.events is None)

    # ------------------------------------------------------------ mutation

    def append(self, event: Event) -> None:
        """Append one event (possibly sealing the tail page).

        This is the paged hot path, and the single place admission lives:
        admit the bytes, let the governor evict if over budget, then
        sample the post-eviction resident peaks -- inlined (no governor
        call) to keep the no-spill tax within the benchmark's 15% gate.
        """
        if self._released:
            raise RuntimeError(f"buffer {self.name!r} was already released")
        page = self._open
        if page is None or page.sealed:
            # No tail yet, or the governor force-sealed (and evicted) the
            # previous tail to meet the budget: start a fresh page.
            page = Page(self._stats, self._owner)
            self._pages.append(page)
            self._open = page
            self._governor.open_page(page)
        cost = event.cost_in_bytes()
        page.events.append(event)
        page.count += 1
        page.cost += cost
        self._count += 1
        self._cost += cost
        stats = self._stats
        # Owner ledger before record_buffered: a fresh byte peak snapshots
        # the per-owner composition, which must already include this event.
        owner = self._owner
        owner.live_bytes += cost
        owner.live_events += 1
        owner.total_bytes += cost
        owner.total_events += 1
        if owner.live_bytes > owner.peak_bytes:
            owner.peak_bytes = owner.live_bytes
        stats.record_buffered(1, cost, False)
        governor = self._governor
        governor.resident_bytes += cost
        if governor.budget_bytes is not None and governor.resident_bytes > governor.budget_bytes:
            governor._enforce()
        if governor.resident_bytes > governor.peak_resident_bytes:
            governor.peak_resident_bytes = governor.resident_bytes
        if stats.resident_bytes_current > stats.peak_resident_bytes:
            stats.peak_resident_bytes = stats.resident_bytes_current
        if page.cost >= self._page_bytes and not page.sealed:
            page.sealed = True
            self._open = None
            self._governor.seal(page)

    def extend(self, events: Iterable[Event]) -> None:
        """Append several events."""
        for event in events:
            self.append(event)

    def release(self) -> None:
        """Free the buffer (when its variable scope ends).

        The logical totals recorded at append time are freed in full --
        whether a page is resident, spilled or already faulted back makes
        no difference to the freed counts -- while the resident decrement
        covers only the bytes actually still in memory.
        """
        if self._released:
            return
        self._released = True
        resident = self.resident_bytes
        owner = self._owner
        owner.live_bytes -= self._cost
        owner.live_events -= self._count
        self._manager._notify_release(self._count, self._cost, resident=resident)
        discard = self._governor.discard
        for page in self._pages:
            discard(page)
        self._pages = []
        self._open = None
        self._count = 0
        self._cost = 0

    # ---------------------------------------------------------- conversion

    def to_tree(self, wrapper_name: str, *, allow_open: bool = False) -> XMLNode:
        """Materialise the buffered forest under a wrapper node.

        Mirrors :meth:`EventBuffer.to_tree` (same shared helper); spilled
        pages are re-loaded (decoded) on the fly.
        """
        return events_to_wrapped_tree(iter(self), wrapper_name, close_open=allow_open)

    def to_single_node(self, *, allow_open: bool = False) -> Optional[XMLNode]:
        """Materialise a buffer that captured one complete element.

        Mirrors :meth:`EventBuffer.to_single_node`.
        """
        return events_to_tree(iter(self), close_open=allow_open)
