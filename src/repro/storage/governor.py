"""The memory governor: one hard byte budget for all buffers of a run.

A :class:`MemoryGovernor` owns

* the **budget** -- a global cap on resident (in-memory) buffered bytes,
* the **admission accounting** -- every byte appended to any
  :class:`~repro.storage.paged_buffer.PagedEventBuffer` is charged here,
* the **replacement policy** -- an LRU over all *sealed* pages of all live
  buffers; when admission pushes the resident total over the budget, the
  coldest sealed pages are encoded
  (:mod:`repro.storage.codec`) and evicted to the
  :class:`~repro.storage.spill.SpillStore` until the total fits again,
* the **spill store** itself (one anonymous temp file, lazily created).

One governor may be shared by any number of buffer managers: the
multi-query engine passes a single governor to all N executor states so
the budget caps the *whole* shared pass, not each query separately.  The
governor keeps the global counters; per-query attribution (spill counts,
resident high-water) is recorded into each page's own
:class:`~repro.engine.stats.RunStatistics`.

Sealed pages are the preferred victims; when none are left and the budget
is still exceeded, the governor *force-seals* the least-recently-appended
open tail page and evicts it too (its buffer just starts a new tail on the
next append).  Admission is therefore never refused, and the resident
high-water mark stays at or under the budget however small it is -- in the
worst case every page holds a single event and the run degrades to
disk-speed rather than aborting.

What the cap covers: *buffered event bytes*, the quantity the paper's
figures report.  Trees a handler materializes from a buffer (and the
engine's own fixed structures) are transient extra memory outside this
ledger, exactly as in the unbounded engine.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

from repro.obs import recorder as _recorder
from repro.obs.metrics import global_registry
from repro.storage.codec import decode_events, encode_events
from repro.storage.spill import SpillStore

# Process-wide storage-layer telemetry (:mod:`repro.obs`).  Bumped only on
# the governor's cold paths -- per sealed page, eviction and fault, never
# per admitted event (admission is inlined in ``PagedEventBuffer.append``).
_metrics = global_registry()
_PAGES_SEALED = _metrics.counter(
    "repro.governor.pages_sealed.total", "Buffer pages sealed (admitted for eviction)"
)
_EVICTIONS = _metrics.counter(
    "repro.governor.evictions.total", "Pages evicted to the spill store"
)
_SPILL_BYTES = _metrics.counter(
    "repro.governor.spill_bytes.total", "Encoded bytes written to spill storage"
)
_FAULTS = _metrics.counter(
    "repro.governor.faults.total", "Spilled pages decoded back on buffer reads"
)

#: Default page size: small enough that a modest budget holds many pages,
#: large enough that codec and file overheads amortize.
DEFAULT_PAGE_BYTES = 16 * 1024

#: Pages never shrink below this, however tiny the budget.
MIN_PAGE_BYTES = 256


def _default_page_bytes(budget_bytes: Optional[int]) -> int:
    """Scale the page size down with small budgets so eviction has grains
    to work with (a 4 KiB budget is useless with 16 KiB pages)."""
    if budget_bytes is None:
        return DEFAULT_PAGE_BYTES
    return max(MIN_PAGE_BYTES, min(DEFAULT_PAGE_BYTES, budget_bytes // 8))


def parse_memory_budget(text: str) -> int:
    """Parse a human byte budget: ``1048576``, ``64k``, ``32M``, ``2g``."""
    raw = text.strip().lower()
    multiplier = 1
    for suffix, factor in (("k", 1024), ("m", 1024**2), ("g", 1024**3)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            multiplier = factor
            break
    try:
        value = int(float(raw) * multiplier)
    except (ValueError, OverflowError):  # OverflowError: 'inf', '1e999'
        raise ValueError(
            f"invalid memory budget {text!r}; expected bytes or a k/m/g suffix "
            "(e.g. 1048576, 64k, 32m)"
        ) from None
    if value <= 0:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return value


class MemoryGovernor:
    """Budget, admission accounting and LRU eviction for paged buffers."""

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        *,
        page_bytes: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.page_bytes = (
            _default_page_bytes(budget_bytes) if page_bytes is None else page_bytes
        )
        if self.page_bytes < 1:
            raise ValueError(f"page_bytes must be positive, got {self.page_bytes}")
        self.store = SpillStore(spill_dir)
        #: Optional victim-selection override: a callable receiving the
        #: sealed resident pages (LRU-first) and returning the page to
        #: evict next.  ``None`` keeps the default LRU policy.  The
        #: subscription server installs a heaviest-subscriber-first
        #: selector here so one hungry subscription spills before it can
        #: squeeze out its peers' working sets.
        self.victim_selector: Optional[Callable] = None
        #: Sealed, resident pages in least-recently-used-first order.
        self._lru: "OrderedDict" = OrderedDict()
        #: Open (still-growing) resident pages, least-recently-appended
        #: first -- the force-seal fallback pool.
        self._open_pages: "OrderedDict" = OrderedDict()
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.spill_count = 0
        self.fault_count = 0

    # ------------------------------------------------------------- factory

    def make_buffer(self, manager, name: str = ""):
        """Buffer factory hook for :class:`~repro.engine.buffers.BufferManager`."""
        from repro.storage.paged_buffer import PagedEventBuffer

        return PagedEventBuffer(manager, self, name=name)

    # ------------------------------------------------------- page protocol

    def open_page(self, page) -> None:
        """Register a buffer's fresh (growing) tail page.

        Open pages are kept in creation order -- a good-enough coldness
        proxy for the force-seal fallback that avoids an ordered-dict
        touch on the per-event hot path.
        """
        self._open_pages[page] = None

    # Admission itself (resident += cost, enforce if over budget, sample
    # the post-eviction peaks) lives inlined in
    # :meth:`PagedEventBuffer.append` -- the per-event hot path; the
    # governor provides the colder halves of the protocol below.

    def seal(self, page) -> None:
        """A page became immutable: it is evictable from now on."""
        self._open_pages.pop(page, None)
        self._lru[page] = None
        _PAGES_SEALED.inc()
        _recorder.RECORDER.note("seal", page.cost)
        self._enforce()

    def read_page(self, page) -> List["object"]:
        """The events of a page -- resident directly, spilled via a
        transient decode that does not re-admit the page (reads never grow
        the resident total, so the budget holds during materialization)."""
        events = page.events
        if events is not None:
            if page in self._lru:
                self._lru.move_to_end(page)
            return events
        payload = self.store.read(page.handle)
        self.fault_count += 1
        _FAULTS.inc()
        _recorder.RECORDER.note("fault", len(payload))
        page.stats.record_page_fault(len(payload))
        return decode_events(payload)

    def discard(self, page) -> None:
        """A buffer released this page: drop it from memory and disk."""
        if page.events is not None:
            self._lru.pop(page, None)
            self._open_pages.pop(page, None)
            self.resident_bytes -= page.cost
            page.events = None
        if page.handle is not None:
            self.store.free(page.handle)
            page.handle = None

    # ----------------------------------------------------------- eviction

    def _enforce(self) -> None:
        if self.budget_bytes is None:
            return
        while self.resident_bytes > self.budget_bytes:
            if self._lru:
                selector = self.victim_selector
                if selector is not None:
                    page = selector(self._lru.keys())
                    del self._lru[page]
                else:
                    page, _ = self._lru.popitem(last=False)
            elif self._open_pages:
                # No sealed victims left: force-seal the coldest open tail
                # page.  Its buffer starts a fresh tail on the next append.
                page, _ = self._open_pages.popitem(last=False)
                page.sealed = True
            else:
                break
            self._evict(page)

    def _evict(self, page) -> None:
        payload = encode_events(page.events)
        page.handle = self.store.write(payload)
        page.events = None
        self.resident_bytes -= page.cost
        self.spill_count += 1
        _EVICTIONS.inc()
        _SPILL_BYTES.inc(len(payload))
        _recorder.RECORDER.note("evict", page.cost, len(payload))
        if page.owner is not None:
            page.owner.spilled_bytes += len(payload)
            page.owner.spill_count += 1
        page.stats.record_spill(page.cost, len(payload))

    # ---------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the spill file.  Idempotent; live pages become unreadable."""
        self._lru.clear()
        self._open_pages.clear()
        self.store.close()

    def __enter__(self) -> "MemoryGovernor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- telemetry

    def telemetry(self) -> dict:
        """Global counters of the whole (possibly multi-query) pass."""
        return {
            "budget_bytes": self.budget_bytes,
            "page_bytes": self.page_bytes,
            "resident_bytes": self.resident_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "spill_count": self.spill_count,
            "fault_count": self.fault_count,
            "spilled_bytes_written": self.store.bytes_written,
            "spilled_bytes_read": self.store.bytes_read,
            "spill_live_bytes": self.store.live_bytes,
        }
