"""Compact length-prefixed codec for spilled event pages.

A spilled page is a flat byte string: a sequence of records, one per SAX
event, each a one-byte kind tag followed by varint-length-prefixed UTF-8
payloads.  The format is deliberately tiny and self-contained -- no pickle,
no per-event object overhead on disk -- and the round-trip is *exact*:
``decode_events(encode_events(events)) == events`` for every event the
engine buffers (names, attribute order and character data are preserved
byte-for-byte, which is what keeps spilled runs byte-identical to
in-memory runs).

Record layout::

    kind:1  payload...

    0x01  StartElement, no attributes:   varint(len) name
    0x02  StartElement with attributes:  varint(len) name  varint(n)
                                         n * (varint(len) key varint(len) value)
    0x03  EndElement:                    varint(len) name
    0x04  Characters:                    varint(len) text

Varints are the usual LEB128 unsigned encoding (7 bits per byte, high bit
= continuation), so short names cost a single length byte.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.xmlstream.events import Characters, EndElement, Event, StartElement

_KIND_START = 0x01
_KIND_START_ATTRS = 0x02
_KIND_END = 0x03
_KIND_CHARACTERS = 0x04


def _append_varint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_str(out: bytearray, text: str) -> None:
    payload = text.encode("utf-8")
    _append_varint(out, len(payload))
    out += payload


def encode_events(events: Iterable[Event]) -> bytes:
    """Serialize a sequence of buffered events to one page payload."""
    out = bytearray()
    for event in events:
        cls = event.__class__
        if cls is StartElement:
            if event.attributes:
                out.append(_KIND_START_ATTRS)
                _append_str(out, event.name)
                _append_varint(out, len(event.attributes))
                for key, value in event.attributes:
                    _append_str(out, key)
                    _append_str(out, value)
            else:
                out.append(_KIND_START)
                _append_str(out, event.name)
        elif cls is Characters:
            out.append(_KIND_CHARACTERS)
            _append_str(out, event.text)
        elif cls is EndElement:
            out.append(_KIND_END)
            _append_str(out, event.name)
        else:
            # Document boundary events are never buffered (the executor
            # strips them before any buffer sees the stream).
            raise TypeError(f"event cannot be spilled: {event!r}")
    return bytes(out)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _read_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _read_varint(data, pos)
    end = pos + length
    return data[pos:end].decode("utf-8"), end


def decode_events(data: bytes) -> List[Event]:
    """Reconstruct the event list of one spilled page payload."""
    events: List[Event] = []
    append = events.append
    pos = 0
    size = len(data)
    while pos < size:
        kind = data[pos]
        pos += 1
        if kind == _KIND_START:
            name, pos = _read_str(data, pos)
            append(StartElement(name))
        elif kind == _KIND_CHARACTERS:
            text, pos = _read_str(data, pos)
            append(Characters(text))
        elif kind == _KIND_END:
            name, pos = _read_str(data, pos)
            append(EndElement(name))
        elif kind == _KIND_START_ATTRS:
            name, pos = _read_str(data, pos)
            count, pos = _read_varint(data, pos)
            attributes = []
            for _ in range(count):
                key, pos = _read_str(data, pos)
                value, pos = _read_str(data, pos)
                attributes.append((key, value))
            append(StartElement(name, tuple(attributes)))
        else:
            raise ValueError(f"corrupt spill page: unknown record kind 0x{kind:02x}")
    return events
