"""Bounded-memory execution: spillable buffers under a hard byte budget.

The paper minimizes *what* is buffered; this package bounds *where* it
lives.  A :class:`MemoryGovernor` owns a global byte budget and the
admission accounting for every buffered event; buffers created through its
factory are :class:`PagedEventBuffer` instances whose sealed pages the
governor may evict -- encoded by the :mod:`~repro.storage.codec` -- into a
temp-file :class:`SpillStore` and decode back on flush.  Output stays
byte-identical to in-memory runs in every sink mode; only residency,
spill counters and (past the budget) throughput change.

Entry points:

* ``FluxEngine(..., memory_budget=...)`` / ``run_query(..., memory_budget=...)``
  -- one governor per run,
* ``MultiQueryEngine(registry, memory_budget=...)`` -- one governor shared
  across all N executor states of the pass,
* CLI: ``--memory-budget 32m`` on ``run``, ``multirun`` and ``xmark``.
"""

from repro.storage.codec import decode_events, encode_events
from repro.storage.governor import (
    DEFAULT_PAGE_BYTES,
    MIN_PAGE_BYTES,
    MemoryGovernor,
    parse_memory_budget,
)
from repro.storage.paged_buffer import Page, PagedEventBuffer
from repro.storage.spill import PageHandle, SpillStore

__all__ = [
    "DEFAULT_PAGE_BYTES",
    "MIN_PAGE_BYTES",
    "MemoryGovernor",
    "Page",
    "PagedEventBuffer",
    "PageHandle",
    "SpillStore",
    "decode_events",
    "encode_events",
    "parse_memory_budget",
]
