"""repro -- reproduction of the FluX system (VLDB 2004).

"Schema-based Scheduling of Event Processors and Buffer Minimization for
Queries on Structured Data Streams" introduced FluX, an event-based extension
of XQuery, together with an algorithm that uses DTD order constraints to
schedule query evaluation over XML streams with minimal main-memory
buffering.  This package reimplements the complete system:

* :mod:`repro.xmlstream` -- streaming XML substrate (events, parser, trees),
* :mod:`repro.dtd` -- DTDs, Glushkov automata, order/cardinality constraints,
* :mod:`repro.xquery` -- the XQuery⁻ fragment, normalisation, reference
  semantics,
* :mod:`repro.flux` -- the FluX language, the scheduling rewrite, safety,
* :mod:`repro.pipeline` -- the push-based event pipeline (tokenize ->
  coalesce -> project -> execute -> sink) with the pre-executor projection
  filter and the unified Sink protocol,
* :mod:`repro.engine` -- the streaming engine with projected buffers,
* :mod:`repro.multiquery` -- multi-query shared-stream execution (one
  parse, N queries, merged projection with membership masks),
* :mod:`repro.storage` -- bounded-memory execution: a memory governor with
  a hard byte budget, spillable paged buffers and a temp-file spill store,
* :mod:`repro.obs` -- observability: per-run span tracing with stage
  breakdowns, a process-wide metrics registry, and JSONL / Prometheus-text
  exporters (``ExecutionOptions(trace=True)`` or ``repro run --trace``),
* :mod:`repro.baselines` -- full-materialisation and projection baselines,
* :mod:`repro.conformance` -- randomized conformance testing: a seeded
  DTD-directed case generator, a cross-engine differential oracle, a
  failing-case shrinker and the replayable ``.case`` format behind the
  ``repro fuzz`` CLI,
* :mod:`repro.xmark` -- XMark-like workload generator and benchmark queries,
* :mod:`repro.core` -- the public API (start here).

The public surface is session-oriented: a :class:`FluxSession` holds the
schema, an LRU plan cache (scheduling against the DTD is the expensive,
perfectly cacheable step) and, optionally, one memory governor shared by
every run.  Prepared queries execute over pull-mode documents (text, path,
file object, chunk iterable) or in **push mode**, fed chunk by chunk as
data arrives from a network.

Quickstart::

    from repro import FluxSession

    session = FluxSession(open("bib.dtd").read(), root_element="bib")
    query = session.prepare(open("query.xq").read())   # compiled once, cached

    result = query.execute("bib.xml")                  # pull mode
    print(result.output)
    print(result.stats.summary())

    with query.open_run() as run:                      # push mode
        for chunk in network_chunks:
            run.feed(chunk)
    print(run.result.output)

The pre-session surface (:class:`FluxEngine`, :func:`run_query` and
friends) keeps working as thin shims over the session layer.
"""

from repro.core import (
    CollectSink,
    CompiledQuery,
    DEFAULT_OPTIONS,
    DocumentResult,
    ExecutionOptions,
    FeedHandle,
    FeedOptions,
    FeedResult,
    FluxEngine,
    FluxRunResult,
    FluxSession,
    FragmentSink,
    MemoryGovernor,
    MetricsRegistry,
    MultiQueryEngine,
    MultiQueryRun,
    NaiveDomEngine,
    NullSink,
    OutputSink,
    PlanCache,
    PlanKey,
    PreparedQuery,
    PreparedQuerySet,
    ProjectionDomEngine,
    QueryRegistry,
    RunHandle,
    RunStatistics,
    SessionStatistics,
    StreamingRun,
    TraceReport,
    Tracer,
    WritableSink,
    compare_engines,
    global_registry,
    compile_to_flux,
    load_dtd,
    parse_memory_budget,
    prometheus_text,
    run_queries,
    run_query,
    run_query_streaming,
    run_query_to_sink,
    validate_span_tree,
)

__version__ = "1.3.0"

__all__ = [
    "CollectSink",
    "CompiledQuery",
    "DEFAULT_OPTIONS",
    "DocumentResult",
    "ExecutionOptions",
    "FeedHandle",
    "FeedOptions",
    "FeedResult",
    "FluxEngine",
    "FluxRunResult",
    "FluxSession",
    "FragmentSink",
    "MemoryGovernor",
    "MetricsRegistry",
    "MultiQueryEngine",
    "MultiQueryRun",
    "NaiveDomEngine",
    "NullSink",
    "OutputSink",
    "PlanCache",
    "PlanKey",
    "PreparedQuery",
    "PreparedQuerySet",
    "ProjectionDomEngine",
    "QueryRegistry",
    "RunHandle",
    "RunStatistics",
    "SessionStatistics",
    "StreamingRun",
    "TraceReport",
    "Tracer",
    "WritableSink",
    "__version__",
    "compare_engines",
    "compile_to_flux",
    "global_registry",
    "load_dtd",
    "parse_memory_budget",
    "prometheus_text",
    "run_queries",
    "run_query",
    "run_query_streaming",
    "run_query_to_sink",
    "validate_span_tree",
]
