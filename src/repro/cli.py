"""Command-line interface.

The CLI exposes the end-to-end pipeline for experimentation without writing
Python code::

    python -m repro compile  --query q.xq --dtd bib.dtd --root bib
    python -m repro run      --query q.xq --dtd bib.dtd --root bib --document doc.xml
    python -m repro multirun --query Q1 --query Q13 --query Q20 --document doc.xml
    python -m repro compare  --query q.xq --dtd bib.dtd --root bib --document doc.xml
    python -m repro validate --dtd bib.dtd --root bib --document doc.xml
    python -m repro generate --scale 0.2 --output xmark.xml
    python -m repro xmark    --query Q13 --scale 0.1
    python -m repro fuzz     --seed 1 --cases 200
    python -m repro fuzz     --replay fuzz-failures/seed1-case23.case
    python -m repro feed     --query Q1 --documents 100 --chunk-size 4096
    python -m repro feed     --query q.xq --dtd bib.dtd --root bib --input stream.xml
    python -m repro serve    --documents 1000 --port 9901
    python -m repro subscribe --query Q1 --query Q13 --port 9901
    python -m repro inspect  crash-dumps/repro-1234-1.crash.json

``compile`` prints the scheduled FluX query and the buffer trees; ``run``
executes a query and reports the output (optionally to a file) together with
the buffer statistics; ``multirun`` executes several queries over *one*
shared document pass (repeat ``--query``, optionally one ``--output`` per
query; ``--stats`` prints a per-query summary table); ``compare`` runs the
FluX engine and both baselines; ``generate`` produces XMark-like documents;
``xmark`` runs one of the benchmark queries on generated data.

``run``, ``multirun`` and ``xmark`` accept ``--memory-budget BYTES`` (k/m/g
suffixes allowed): resident buffered memory is then hard-capped and cold
buffer pages spill to a temp file, with output byte-identical to the
unbounded run.  The same three commands accept ``--trace``, which prints a
per-stage time/bytes/events breakdown table (:mod:`repro.obs`) to stderr
after the run; tracing never changes the output.

``run`` and ``multirun`` additionally accept ``--explain-buffers`` (the
per-owner buffer attribution table: who held the peak bytes, and which
plan decision blocked streaming) and ``--serve-metrics PORT`` (a
background ``/metrics`` + ``/progress`` HTTP endpoint on ``127.0.0.1``
for the duration of the command).  ``inspect`` renders the
``*.crash.json`` forensic dumps the flight recorder writes when
``REPRO_CRASH_DIR`` is set and an engine error aborts a run.

``feed`` runs one prepared query as a continuous feed
(:mod:`repro.feeds`) over a stream of concatenated documents: either the
synthetic XMark auction ticker (default; ``--documents``/``--scale``/
``--seed`` shape it) or a file of concatenated documents (``--input``,
with ``--dtd``/``--root`` naming their schema).  The stream is cut into
``--chunk-size``-byte chunks, so document boundaries land mid-chunk; the
summary line reports documents/second and the final resume offset, and
``--resume-from`` skips an already-processed prefix (the crash-recovery
recipe: pass the resume offset a previous run printed or dumped).

``serve`` runs the streaming subscription server (:mod:`repro.serve`):
one shared tokenize -> coalesce -> project pass over a live feed (the
XMark ticker, a file of concatenated documents, or client-pushed chunks
with ``--client-fed``), fanned out to any number of subscribed queries
over NDJSON-over-TCP.  ``subscribe`` is the matching client: it
registers one or more queries (``--query``, repeatable) on a running
server and streams their results to stdout until ``eof``.

``fuzz`` drives the randomized conformance harness
(:mod:`repro.conformance`): ``--seed``/``--cases`` sweep generated
(DTD, document, queries) triples through every engine and sink mode,
failing cases are shrunk and saved as replayable ``.case`` files, and
``--replay FILE`` re-checks one such file.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from repro.baselines import NaiveDomEngine, ProjectionDomEngine
from repro.core.api import compile_to_flux, load_dtd
from repro.core.options import ExecutionOptions
from repro.core.session import FluxSession
from repro.engine.engine import FluxEngine
from repro.dtd.validator import validate_document
from repro.storage import parse_memory_budget
from repro.xmark.dtd import XMARK_DTD_SOURCE
from repro.xmark.generator import config_for_scale, write_document, generate_document
from repro.xmark.queries import BENCHMARK_QUERIES
from repro.xmark.ticker import DEFAULT_TICK_SCALE, iter_ticker_chunks
from repro.xmlstream.parser import iter_events


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_schema(args) -> "DTD":
    if args.dtd is None:
        return load_dtd(XMARK_DTD_SOURCE, root_element=args.root or "site")
    return load_dtd(_read(args.dtd), root_element=args.root)


def _add_schema_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dtd", help="path to the DTD file (defaults to the built-in XMark DTD)")
    parser.add_argument("--root", help="name of the document element", default=None)


def _add_query_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--query",
        required=True,
        help="path to the XQuery- file, or the name of a built-in XMark query (Q1, Q8, Q11, Q13, Q20)",
    )


def _resolve_query(argument: str) -> str:
    if argument in BENCHMARK_QUERIES:
        return BENCHMARK_QUERIES[argument]
    return _read(argument)


def _add_fastpath_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fastpath",
        action="store_true",
        help="use the bytes-native accelerated engine core (REPRO_FASTPATH overrides)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace the run and print a per-stage time/bytes/events breakdown "
            "to stderr (REPRO_TRACE overrides); output is unchanged"
        ),
    )


def _add_memory_budget_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget",
        type=parse_memory_budget,
        default=None,
        metavar="BYTES",
        help=(
            "hard cap on resident buffered memory (accepts k/m/g suffixes, "
            "e.g. 32m); cold buffer pages spill to a temp file, output is "
            "unchanged"
        ),
    )


def _add_serve_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics (Prometheus text) and /progress (JSON watermarks "
            "of open push-mode runs) on 127.0.0.1:PORT while the command "
            "runs (0 picks an ephemeral port); output is unchanged"
        ),
    )


def _serve_metrics_banner(port) -> None:
    """Start the inspection server for a CLI run and say where it listens."""
    if port is None:
        return
    from repro.obs.serve import ensure_server

    server = ensure_server(port)
    print(
        f"serving /metrics and /progress on http://127.0.0.1:{server.port}",
        file=sys.stderr,
    )


# ---------------------------------------------------------------------------
# Subcommands


def _cmd_compile(args) -> int:
    schema = _load_schema(args)
    compiled = compile_to_flux(_resolve_query(args.query), schema)
    print("--- scheduled FluX query ---")
    print(compiled.flux_source)
    if args.show_normalized:
        print("\n--- normalised XQuery- ---")
        print(compiled.normalized_source)
    engine = FluxEngine(compiled.flux, schema)
    print("\n--- buffer trees ---")
    print(engine.describe_buffers())
    print(f"\nsafe for the DTD: {compiled.is_safe}")
    return 0


def _cmd_run(args) -> int:
    if args.output and args.discard_output:
        print("error: --output and --discard-output are mutually exclusive", file=sys.stderr)
        return 2
    _serve_metrics_banner(args.serve_metrics)
    session = FluxSession(
        _load_schema(args),
        options=ExecutionOptions(
            memory_budget=args.memory_budget,
            fastpath=True if args.fastpath else None,
            trace=True if args.trace else None,
            serve_metrics=args.serve_metrics,
        ),
    )
    prepared = session.prepare(
        _resolve_query(args.query), projection=not args.no_projection
    )
    if args.output:
        # Stream fragments straight to the file: the result never exists as
        # one in-memory string, however large it is.
        with open(args.output, "w", encoding="utf-8") as handle:
            result = prepared.execute(args.document, sink=handle)
    else:
        result = prepared.execute(args.document, collect_output=not args.discard_output)
        if not args.discard_output:
            print(result.output)
    print(result.stats.summary(), file=sys.stderr)
    if args.explain_buffers:
        from repro.obs.attrib import format_attribution

        print(format_attribution(result.stats), file=sys.stderr)
    if result.trace is not None:
        print(result.trace.table(), file=sys.stderr)
    return 0


def _cmd_multirun(args) -> int:
    if args.output and args.discard_output:
        print("error: --output and --discard-output are mutually exclusive", file=sys.stderr)
        return 2
    schema = _load_schema(args)
    if args.output and len(args.output) != len(args.query):
        print(
            f"error: {len(args.query)} queries but {len(args.output)} --output paths "
            "(pass exactly one per query, or none)",
            file=sys.stderr,
        )
        return 2

    _serve_metrics_banner(args.serve_metrics)
    session = FluxSession(
        schema,
        options=ExecutionOptions(
            memory_budget=args.memory_budget,
            fastpath=True if args.fastpath else None,
            trace=True if args.trace else None,
            serve_metrics=args.serve_metrics,
        ),
    )
    queries = {}
    names = []
    for argument in args.query:
        name = argument
        suffix = 2
        while name in queries:
            name = f"{argument}#{suffix}"
            suffix += 1
        queries[name] = _resolve_query(argument)
        names.append(name)
    prepared = session.prepare_many(queries, projection=not args.no_projection)

    if args.output:
        with contextlib.ExitStack() as stack:
            sinks = {
                name: stack.enter_context(open(path, "w", encoding="utf-8"))
                for name, path in zip(names, args.output)
            }
            run = prepared.execute(args.document, sinks=sinks)
    else:
        run = prepared.execute(args.document, collect_output=not args.discard_output)
        if not args.discard_output:
            for name in names:
                print(f"--- {name} ---")
                print(run[name].output)
    for name in names:
        print(f"{name}: {run[name].stats.summary()}", file=sys.stderr)
    if args.explain_buffers:
        from repro.obs.attrib import format_attribution

        for name in names:
            print(f"--- {name} buffers ---", file=sys.stderr)
            print(format_attribution(run[name].stats), file=sys.stderr)
    print(
        f"shared pass over {len(names)} queries: {run.elapsed_seconds:.3f}s total",
        file=sys.stderr,
    )
    if args.stats:
        _print_multirun_stats(run, names)
    if run.trace is not None:
        print(run.trace.table(), file=sys.stderr)
    return 0


def _print_multirun_stats(run, names) -> None:
    """The ``multirun --stats`` per-query summary table (to stderr)."""
    headers = (
        "query", "in events", "out bytes", "peak buffer [B]",
        "peak resident [B]", "spill bytes", "evictions",
    )
    rows = []
    for name in names:
        stats = run[name].stats
        rows.append((
            name,
            str(stats.input_events),
            str(stats.output_bytes),
            str(stats.peak_buffered_bytes),
            str(stats.peak_resident_bytes),
            str(stats.spilled_bytes_written),
            str(stats.spill_count),
        ))
    widths = [
        max(len(header), *(len(row[column]) for row in rows))
        for column, header in enumerate(headers)
    ]

    def render(cells) -> str:
        # The query name is the only text column; every number right-aligns.
        rest = (cell.rjust(widths[i]) for i, cell in enumerate(cells) if i > 0)
        return "  ".join([cells[0].ljust(widths[0]), *rest]).rstrip()

    print(render(headers), file=sys.stderr)
    for row in rows:
        print(render(row), file=sys.stderr)
    if run.memory is not None:
        memory = run.memory
        print(
            f"memory budget: {memory['budget_bytes']}B "
            f"(page {memory['page_bytes']}B) "
            f"peak-resident={memory['peak_resident_bytes']}B "
            f"spills={memory['spill_count']} pages/"
            f"{memory['spilled_bytes_written']}B "
            f"faults={memory['fault_count']} pages/"
            f"{memory['spilled_bytes_read']}B",
            file=sys.stderr,
        )


def _cmd_compare(args) -> int:
    schema = _load_schema(args)
    query = _resolve_query(args.query)
    # A path is handed to each engine as-is: every engine resolves document
    # sources itself (the FluX pipeline reads it incrementally -- mmap on
    # the fast path -- instead of one whole-file read here).
    document = args.document

    flux = FluxEngine(query, schema).run(document, collect_output=True)
    naive = NaiveDomEngine(query).run(document)
    projection = ProjectionDomEngine(query).run(document)

    agree = flux.output == naive.output == projection.output
    print(f"{'engine':>16} {'time [s]':>10} {'peak memory [B]':>16}")
    print(f"{'flux':>16} {flux.stats.elapsed_seconds:>10.3f} {flux.stats.peak_buffered_bytes:>16}")
    print(f"{'naive-dom':>16} {naive.elapsed_seconds:>10.3f} {naive.peak_buffered_bytes:>16}")
    print(f"{'projection-dom':>16} {projection.elapsed_seconds:>10.3f} {projection.peak_buffered_bytes:>16}")
    print(f"outputs identical: {agree}")
    return 0 if agree else 1


def _cmd_validate(args) -> int:
    schema = _load_schema(args)
    report = validate_document(schema, iter_events(args.document), expected_root=args.root)
    if report.is_valid:
        print(f"valid ({report.element_count} elements)")
        return 0
    print(f"INVALID ({len(report.errors)} errors)")
    for error in report.errors[: args.max_errors]:
        print(f"  - {error}")
    return 1


def _cmd_generate(args) -> int:
    config = config_for_scale(args.scale, seed=args.seed)
    if args.output:
        written = write_document(args.output, config)
        print(f"wrote {written} bytes to {args.output}")
    else:
        sys.stdout.write(generate_document(config))
    return 0


def _cmd_xmark(args) -> int:
    schema = load_dtd(XMARK_DTD_SOURCE, root_element="site")
    document = generate_document(config_for_scale(args.scale, seed=args.seed))
    query = BENCHMARK_QUERIES[args.query]
    session = FluxSession(
        schema,
        options=ExecutionOptions(
            memory_budget=args.memory_budget,
            fastpath=True if args.fastpath else None,
            trace=True if args.trace else None,
        ),
    )
    result = session.prepare(query, projection=not args.no_projection).execute(
        document, collect_output=not args.discard_output
    )
    if not args.discard_output and args.show_output:
        print(result.output)
    line = (
        f"{args.query} on {len(document)} bytes: "
        f"time={result.stats.elapsed_seconds:.3f}s "
        f"peak-buffer={result.stats.peak_buffered_bytes}B "
        f"output={result.stats.output_bytes}B"
    )
    if args.memory_budget is not None:
        line += (
            f" peak-resident={result.stats.peak_resident_bytes}B "
            f"spills={result.stats.spill_count} "
            f"spill-bytes={result.stats.spilled_bytes_written}B "
            f"evictions={result.stats.spill_count}"
        )
    print(line)
    if result.trace is not None:
        print(result.trace.table(), file=sys.stderr)
    return 0


def _iter_file_chunks(path: str, chunk_size: int):
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return
            yield chunk


def _cmd_feed(args) -> int:
    import time

    if args.chunk_size <= 0:
        print("error: --chunk-size must be positive", file=sys.stderr)
        return 2
    if args.input is None:
        schema = load_dtd(XMARK_DTD_SOURCE, root_element=args.root or "site")
        chunks = iter_ticker_chunks(
            documents=args.documents,
            seed=args.seed,
            scale=args.scale,
            chunk_size=args.chunk_size,
        )
        source = f"ticker({args.documents} docs, scale {args.scale}, seed {args.seed})"
    else:
        schema = _load_schema(args)
        chunks = _iter_file_chunks(args.input, args.chunk_size)
        source = args.input

    _serve_metrics_banner(args.serve_metrics)
    session = FluxSession(
        schema,
        options=ExecutionOptions(
            memory_budget=args.memory_budget,
            fastpath=True if args.fastpath else None,
            serve_metrics=args.serve_metrics,
        ),
    )
    prepared = session.prepare(_resolve_query(args.query))

    def on_document(document) -> None:
        if args.show_output:
            print(document.result.output)
        if args.verbose:
            print(
                f"doc {document.index}: bytes "
                f"[{document.start_offset}, {document.end_offset}) "
                f"output={document.result.stats.output_bytes}B "
                f"peak-buffer={document.result.stats.peak_buffered_bytes}B",
                file=sys.stderr,
            )

    def on_heartbeat(progress) -> None:
        print(
            f"heartbeat: {progress['bytes_fed']}B fed, "
            f"{progress['documents_completed']} documents, "
            f"resume offset {progress['resume_offset']}",
            file=sys.stderr,
        )

    started = time.perf_counter()
    with prepared.open_feed(
        on_document=on_document,
        on_heartbeat=on_heartbeat if args.heartbeat else None,
        resume_from=args.resume_from,
    ) as feed:
        for chunk in chunks:
            feed.feed(chunk)
    elapsed = time.perf_counter() - started
    summary = feed.result
    rate = summary.documents_completed / elapsed if elapsed > 0 else float("inf")
    print(
        f"feed over {source}: {summary.documents_completed} documents, "
        f"{summary.bytes_fed} bytes in {elapsed:.3f}s ({rate:.1f} docs/s), "
        f"resume offset {summary.resume_offset}"
    )
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro.serve import ServeServer, SubscriptionHub

    if args.chunk_size <= 0:
        print("error: --chunk-size must be positive", file=sys.stderr)
        return 2
    _serve_metrics_banner(args.serve_metrics)
    hub = SubscriptionHub(
        _load_schema(args),
        options=ExecutionOptions(
            memory_budget=args.memory_budget,
            fastpath=True if args.fastpath else None,
            serve_metrics=args.serve_metrics,
        ),
    )
    if args.client_fed:
        chunks = None
        source = "client-fed stream"
    elif args.input is not None:
        chunks = _iter_file_chunks(args.input, args.chunk_size)
        source = args.input
    else:
        chunks = iter_ticker_chunks(
            documents=args.documents,
            seed=args.seed,
            scale=args.scale,
            chunk_size=args.chunk_size,
        )
        source = f"ticker({args.documents} docs, scale {args.scale}, seed {args.seed})"

    server = ServeServer(hub, host=args.host, port=args.port, chunks=chunks)
    server.start()
    print(f"subscription server on {args.host}:{server.port} ({source})", flush=True)
    try:
        server.join()
        # Give connected subscribers a window to drain their queues and
        # receive ``eof`` before the socket goes away.
        deadline = time.monotonic() + args.linger
        while time.monotonic() < deadline:
            if all(c.eof_sent or c.closed for c in list(server._connections)):
                break
            time.sleep(0.05)
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        server.stop()
    progress = hub.progress()
    print(
        f"served {progress['documents_completed']} documents, "
        f"{progress['bytes_fed']} bytes; fanout attaches={progress['fanout']['attaches']} "
        f"detaches={progress['fanout']['detaches']} recompiles={progress['fanout']['recompiles']}"
    )
    return 1 if server.engine_error is not None else 0


def _resolve_subscribe_query(argument: str) -> str:
    # Built-in names travel as-is (the server resolves them); anything else
    # must be a local query file whose text goes over the wire.
    if argument in BENCHMARK_QUERIES:
        return argument
    return _read(argument)


def _cmd_subscribe(args) -> int:
    from repro.serve import SubscribeClient

    queries = [_resolve_subscribe_query(q) for q in args.query]
    results = 0
    status = 0
    try:
        with SubscribeClient(args.host, args.port, timeout=args.timeout) as client:
            for query in queries:
                client.subscribe(query, policy=args.policy, max_queue=args.max_queue)
            for frame in client.frames():
                event = frame.get("event")
                if event == "subscribed":
                    print(f"subscribed as {frame['name']}", file=sys.stderr)
                elif event == "result":
                    results += 1
                    if not args.quiet:
                        print(frame["output"], end="")
                        if frame["output"] and not frame["output"].endswith("\n"):
                            print()
                    if args.max_results is not None and results >= args.max_results:
                        break
                elif event == "error":
                    print(f"server error: {frame.get('message')}", file=sys.stderr)
                    status = 1
                elif event == "eof":
                    break
    except (ConnectionError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{results} results received", file=sys.stderr)
    return status


def _cmd_inspect(args) -> int:
    from repro.obs.recorder import inspect_crash

    status = 0
    for path in args.dump:
        try:
            print(inspect_crash(path))
        except (OSError, ValueError) as error:
            print(f"error: cannot inspect {path}: {error}", file=sys.stderr)
            status = 1
    return status


def _cmd_fuzz(args) -> int:
    from repro.conformance import ConformanceFailure, fuzz, replay

    if args.replay:
        failures = 0
        for path in args.replay:
            try:
                report = replay(path)
            except ConformanceFailure as failure:
                failures += 1
                print(f"{path}: FAIL")
                for divergence in failure.divergences:
                    print(f"  - {divergence}")
            else:
                facts = []
                if report.buffered:
                    facts.append("buffered")
                if report.forced_spills:
                    facts.append("forced spills")
                print(f"{path}: PASS ({', '.join(facts) if facts else 'streaming-only'})")
        return 1 if failures else 0

    def progress(index, case_report):
        if args.verbose:
            verdict = "ok" if case_report.passed else "FAIL"
            print(f"case {index}: {verdict} ({case_report.case.describe()})", file=sys.stderr)

    report = fuzz(
        args.seed,
        args.cases,
        start=args.start,
        save_dir=args.save_dir,
        max_queries=args.max_queries,
        shrink=not args.no_shrink,
        on_case=progress,
    )
    print(report.summary())
    for failure in report.failures:
        print(failure.summary())
        for divergence in failure.divergences[:5]:
            print(f"  - {divergence}")
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# Argument parsing


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FluX: schema-based scheduling for queries on XML streams (VLDB 2004 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser("compile", help="schedule a query into FluX and show the buffers")
    _add_query_argument(compile_parser)
    _add_schema_arguments(compile_parser)
    compile_parser.add_argument("--show-normalized", action="store_true", help="also print the normalised query")
    compile_parser.set_defaults(handler=_cmd_compile)

    run_parser = subparsers.add_parser("run", help="execute a query over a document")
    _add_query_argument(run_parser)
    _add_schema_arguments(run_parser)
    run_parser.add_argument("--document", required=True, help="path to the XML document")
    run_parser.add_argument(
        "--output", help="stream the result to this file instead of stdout (never materialised)"
    )
    run_parser.add_argument("--discard-output", action="store_true", help="do not materialise the result")
    run_parser.add_argument(
        "--no-projection",
        action="store_true",
        help="disable the pre-executor projection filter (for comparisons)",
    )
    _add_fastpath_argument(run_parser)
    _add_memory_budget_argument(run_parser)
    _add_trace_argument(run_parser)
    _add_serve_metrics_argument(run_parser)
    run_parser.add_argument(
        "--explain-buffers",
        action="store_true",
        help=(
            "print the per-owner buffer attribution table (who held the "
            "peak bytes and which plan decision blocked streaming) to stderr"
        ),
    )
    run_parser.set_defaults(handler=_cmd_run)

    multirun_parser = subparsers.add_parser(
        "multirun", help="execute several queries over one shared document pass"
    )
    multirun_parser.add_argument(
        "--query",
        action="append",
        required=True,
        help="query to register (repeatable): a file path or a built-in XMark query name",
    )
    _add_schema_arguments(multirun_parser)
    multirun_parser.add_argument("--document", required=True, help="path to the XML document")
    multirun_parser.add_argument(
        "--output",
        action="append",
        help="output file for the corresponding --query (repeatable, one per query)",
    )
    multirun_parser.add_argument(
        "--discard-output", action="store_true", help="do not materialise any result"
    )
    multirun_parser.add_argument(
        "--no-projection",
        action="store_true",
        help="disable every query's projection filter in the merged pass",
    )
    _add_fastpath_argument(multirun_parser)
    _add_memory_budget_argument(multirun_parser)
    _add_trace_argument(multirun_parser)
    _add_serve_metrics_argument(multirun_parser)
    multirun_parser.add_argument(
        "--explain-buffers",
        action="store_true",
        help="print each query's per-owner buffer attribution table to stderr",
    )
    multirun_parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print a per-query summary table (events, peak buffered bytes, "
            "spill bytes, evictions) after the run"
        ),
    )
    multirun_parser.set_defaults(handler=_cmd_multirun)

    compare_parser = subparsers.add_parser("compare", help="run FluX and both baselines over a document")
    _add_query_argument(compare_parser)
    _add_schema_arguments(compare_parser)
    compare_parser.add_argument("--document", required=True, help="path to the XML document")
    compare_parser.set_defaults(handler=_cmd_compare)

    validate_parser = subparsers.add_parser("validate", help="validate a document against a DTD")
    _add_schema_arguments(validate_parser)
    validate_parser.add_argument("--document", required=True, help="path to the XML document")
    validate_parser.add_argument("--max-errors", type=int, default=20)
    validate_parser.set_defaults(handler=_cmd_validate)

    generate_parser = subparsers.add_parser("generate", help="generate an XMark-like document")
    generate_parser.add_argument("--scale", type=float, default=0.1, help="document scale (~MB)")
    generate_parser.add_argument("--seed", type=int, default=42)
    generate_parser.add_argument("--output", help="output file (stdout if omitted)")
    generate_parser.set_defaults(handler=_cmd_generate)

    xmark_parser = subparsers.add_parser("xmark", help="run a built-in benchmark query on generated data")
    xmark_parser.add_argument("--query", choices=sorted(BENCHMARK_QUERIES), default="Q13")
    xmark_parser.add_argument("--scale", type=float, default=0.1)
    xmark_parser.add_argument("--seed", type=int, default=42)
    xmark_parser.add_argument("--show-output", action="store_true")
    xmark_parser.add_argument("--discard-output", action="store_true")
    xmark_parser.add_argument(
        "--no-projection",
        action="store_true",
        help="disable the pre-executor projection filter (for comparisons)",
    )
    _add_fastpath_argument(xmark_parser)
    _add_memory_budget_argument(xmark_parser)
    _add_trace_argument(xmark_parser)
    xmark_parser.set_defaults(handler=_cmd_xmark)

    feed_parser = subparsers.add_parser(
        "feed",
        help="run one query as a continuous feed over a stream of concatenated documents",
    )
    _add_query_argument(feed_parser)
    _add_schema_arguments(feed_parser)
    feed_parser.add_argument(
        "--input",
        help=(
            "file of concatenated documents to stream (omit to generate the "
            "synthetic XMark auction ticker instead)"
        ),
    )
    feed_parser.add_argument(
        "--documents",
        type=int,
        default=100,
        help="ticker mode: number of tick documents to stream",
    )
    feed_parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_TICK_SCALE,
        help="ticker mode: per-tick document scale",
    )
    feed_parser.add_argument("--seed", type=int, default=42, help="ticker mode: generator seed")
    feed_parser.add_argument(
        "--chunk-size",
        type=int,
        default=8192,
        metavar="BYTES",
        help="cut the stream into chunks of this many bytes (boundaries land anywhere)",
    )
    feed_parser.add_argument(
        "--resume-from",
        type=int,
        default=None,
        metavar="OFFSET",
        help=(
            "skip this many stream bytes before processing: the resume offset "
            "a previous run printed (or its crash dump recorded)"
        ),
    )
    feed_parser.add_argument(
        "--show-output", action="store_true", help="print each document's result to stdout"
    )
    feed_parser.add_argument(
        "--heartbeat", action="store_true", help="print heartbeat punctuation lines to stderr"
    )
    feed_parser.add_argument("--verbose", action="store_true", help="per-document progress on stderr")
    _add_fastpath_argument(feed_parser)
    _add_memory_budget_argument(feed_parser)
    _add_serve_metrics_argument(feed_parser)
    feed_parser.set_defaults(handler=_cmd_feed)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the streaming subscription server (repro.serve) over a live feed",
    )
    _add_schema_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1", help="listen address")
    serve_parser.add_argument(
        "--port", type=int, default=0, help="listen port (0 picks an ephemeral port)"
    )
    serve_parser.add_argument(
        "--input",
        help="file of concatenated documents to stream (omit for the XMark ticker)",
    )
    serve_parser.add_argument(
        "--client-fed",
        action="store_true",
        help="no server-side source: clients push the stream via 'feed'/'finish' ops",
    )
    serve_parser.add_argument(
        "--documents", type=int, default=100, help="ticker mode: number of tick documents"
    )
    serve_parser.add_argument(
        "--scale", type=float, default=DEFAULT_TICK_SCALE, help="ticker mode: per-tick scale"
    )
    serve_parser.add_argument("--seed", type=int, default=42, help="ticker mode: generator seed")
    serve_parser.add_argument(
        "--chunk-size",
        type=int,
        default=8192,
        metavar="BYTES",
        help="cut the stream into chunks of this many bytes",
    )
    serve_parser.add_argument(
        "--linger",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="after the feed ends, wait up to this long for subscribers to drain",
    )
    _add_fastpath_argument(serve_parser)
    _add_memory_budget_argument(serve_parser)
    _add_serve_metrics_argument(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    subscribe_parser = subparsers.add_parser(
        "subscribe",
        help="subscribe queries to a running subscription server and stream results",
    )
    subscribe_parser.add_argument(
        "--query",
        action="append",
        required=True,
        help=(
            "a built-in XMark query name (Q1, Q8, ...) or a path to an XQuery- "
            "file; repeatable for several subscriptions on one connection"
        ),
    )
    subscribe_parser.add_argument("--host", default="127.0.0.1", help="server address")
    subscribe_parser.add_argument("--port", type=int, required=True, help="server port")
    subscribe_parser.add_argument(
        "--policy",
        choices=("block", "drop", "disconnect"),
        default="block",
        help="slow-consumer policy for these subscriptions",
    )
    subscribe_parser.add_argument(
        "--max-queue", type=int, default=None, help="bounded delivery queue depth"
    )
    subscribe_parser.add_argument(
        "--max-results", type=int, default=None, help="disconnect after this many results"
    )
    subscribe_parser.add_argument(
        "--timeout", type=float, default=30.0, help="socket timeout in seconds"
    )
    subscribe_parser.add_argument(
        "--quiet", action="store_true", help="count results instead of printing them"
    )
    subscribe_parser.set_defaults(handler=_cmd_subscribe)

    inspect_parser = subparsers.add_parser(
        "inspect",
        help="pretty-print a *.crash.json flight-recorder dump (see REPRO_CRASH_DIR)",
    )
    inspect_parser.add_argument(
        "dump", nargs="+", metavar="CRASH_JSON", help="crash dump file(s) to render"
    )
    inspect_parser.set_defaults(handler=_cmd_inspect)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="randomized conformance sweep: every engine and sink mode must agree byte-for-byte",
    )
    fuzz_parser.add_argument("--seed", type=int, default=1, help="generator seed (the sweep is deterministic per seed)")
    fuzz_parser.add_argument("--cases", type=int, default=100, help="number of generated cases to check")
    fuzz_parser.add_argument("--start", type=int, default=0, help="first case index (resume a sweep)")
    fuzz_parser.add_argument(
        "--save-dir",
        default="fuzz-failures",
        help="directory for shrunk failing .case files (created on demand)",
    )
    fuzz_parser.add_argument(
        "--max-queries", type=int, default=3, help="maximum queries per generated case"
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true", help="save failing cases unshrunk (faster triage loop)"
    )
    fuzz_parser.add_argument("--verbose", action="store_true", help="per-case progress on stderr")
    fuzz_parser.add_argument(
        "--replay",
        action="append",
        metavar="FILE",
        help="replay saved .case files through the oracle instead of generating (repeatable)",
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
