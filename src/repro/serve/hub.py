"""The subscription hub: one shared document stream, N live subscribers.

The hub is the synchronous heart of :mod:`repro.serve`.  One *engine
thread* feeds it stream chunks (network bytes, the XMark ticker, a file);
every chunk flows through **one** tokenize -> coalesce -> project pass
whatever the subscriber count, and the surviving per-subscription
sub-streams drive one :class:`~repro.engine.executor.StreamExecutor` per
active subscription per document -- exactly the multi-query fan-out, made
long-lived and churn-tolerant:

* subscriptions attach and detach **at document boundaries only** (calls
  made mid-document are queued and applied when the current document
  seals), so in-flight results are never perturbed;
* the union projection automaton is maintained incrementally by
  :class:`~repro.serve.fanout.DynamicFanout` -- churn never re-merges the
  surviving queries (``fanout.recompiles`` stays put);
* per-document results are delivered into each subscription's **bounded
  queue**; a slow consumer is handled by the subscription's policy --
  ``block`` (backpressure the engine thread), ``drop`` (count and skip) or
  ``disconnect`` (evict the subscriber at the next boundary);
* all executors share one optional :class:`~repro.storage.governor.
  MemoryGovernor` whose victim selection is biased to the *heaviest
  subscriber's* pages, so one join-heavy subscription spills before it can
  crowd out the others.

Two subscriptions may carry the *same* query text: each owns its own seat
in the fan-out, its own executors, queue and counters -- results are
delivered independently (the compiled engine is shared, the streams are
not).
"""

from __future__ import annotations

import codecs
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.core.options import DEFAULT_OPTIONS, ExecutionOptions
from repro.dtd.schema import DTD
from repro.engine.engine import FluxEngine, ensure_rooted
from repro.engine.executor import StreamExecutor
from repro.engine.stats import RunStatistics
from repro.fastpath import use_fastpath
from repro.fastpath.scanner import ByteScanner
from repro.obs import recorder as _flight
from repro.obs import serve as _serve
from repro.obs.metrics import global_registry
from repro.pipeline.stages import coalesce_characters
from repro.serve.fanout import DynamicFanout, DynamicStreamProjector
from repro.storage.governor import MemoryGovernor
from repro.xmark.dtd import xmark_dtd
from repro.xmlstream.errors import XMLWellFormednessError
from repro.xmlstream.tokenizer import Tokenizer

#: Padding accepted between documents (mirrors :mod:`repro.feeds`).
_INTERDOC_WS = b" \t\r\n"

#: Slow-consumer policies.
POLICIES = ("block", "drop", "disconnect")

#: Default bound on a subscription's result queue.
DEFAULT_MAX_QUEUE = 64

_metrics = global_registry()
_CHUNKS = _metrics.counter("repro.serve.chunks.total", "Stream chunks fed to subscription hubs")
_DOCUMENTS = _metrics.counter("repro.serve.documents.total", "Documents sealed by subscription hubs")
_DELIVERED = _metrics.counter("repro.serve.results.delivered.total", "Per-subscription results enqueued")
_DROPPED = _metrics.counter("repro.serve.results.dropped.total", "Results dropped by slow-consumer policy")
_SUBSCRIBES = _metrics.counter("repro.serve.subscribes.total", "Subscriptions opened")
_UNSUBSCRIBES = _metrics.counter("repro.serve.unsubscribes.total", "Subscriptions closed")
_DISCONNECTS = _metrics.counter("repro.serve.disconnects.total", "Subscribers evicted by the disconnect policy")


@dataclass(frozen=True)
class SubscriptionResult:
    """One document's output for one subscription."""

    name: str
    document: int
    output: str
    seq: int
    #: ``time.perf_counter()`` at seal time -- the delivery-latency anchor.
    sealed_at: float
    stats: RunStatistics = field(repr=False, compare=False, default=None)


class Subscription:
    """One subscriber's seat: bounded result queue + watermarks.

    Created by :meth:`SubscriptionHub.subscribe`; consumed from any thread
    via :meth:`get` / :meth:`results`.  All counters are plain ints guarded
    by the queue condition.
    """

    def __init__(self, hub: "SubscriptionHub", name: str, query: str, policy: str, max_queue: int):
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._hub = hub
        self._engine = None
        self.name = name
        self.query = query
        self.policy = policy
        self.max_queue = max_queue
        self.slot_id: Optional[int] = None
        #: pending -> active -> finished | disconnected | closed
        self.state = "pending"
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._cancelled = False
        self.delivered = 0
        self.dropped = 0
        self.documents = 0
        self.seq = 0
        self.peak_queue_depth = 0
        self.resident_hwm = 0
        self.first_document: Optional[int] = None
        #: Optional hook fired (outside the lock) after each enqueue -- the
        #: asyncio server bridges thread-side delivery to its event loop here.
        self.on_ready: Optional[Callable[["Subscription"], None]] = None

    # --------------------------------------------------------------- consume

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def get(self, timeout: Optional[float] = None) -> Optional[SubscriptionResult]:
        """Next result; ``None`` on end-of-subscription (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._queue:
                if self.state in ("finished", "disconnected", "closed"):
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining if remaining is not None else 0.5)
            item = self._queue.popleft()
            self._cond.notify_all()
            return item

    def get_nowait(self) -> Optional[SubscriptionResult]:
        with self._cond:
            if not self._queue:
                return None
            item = self._queue.popleft()
            self._cond.notify_all()
            return item

    def results(self):
        """Iterate results until the subscription ends."""
        while True:
            item = self.get()
            if item is None:
                return
            yield item

    def close(self) -> None:
        """Consumer-side cancel: unsubscribes from the hub."""
        self._hub.unsubscribe(self)

    # --------------------------------------------------------------- deliver

    def _deliver(self, result: SubscriptionResult) -> bool:
        """Engine-thread side: enqueue under the subscription's policy."""
        notify = False
        with self._cond:
            if self.state != "active":
                return False
            if len(self._queue) >= self.max_queue:
                if self.policy == "block":
                    # ``_cancelled`` breaks the wait when the consumer went
                    # away mid-document (its detach applies at the boundary
                    # this delivery is part of -- blocking would deadlock).
                    while (
                        len(self._queue) >= self.max_queue
                        and self.state == "active"
                        and not self._cancelled
                    ):
                        self._cond.wait(0.1)
                    if self.state != "active" or self._cancelled:
                        return False
                elif self.policy == "drop":
                    self.dropped += 1
                    _DROPPED.inc()
                    return False
                else:  # disconnect
                    # Mark only -- the hub's boundary sweep performs the
                    # detach, so no hub lock is taken under this one.
                    self.dropped += 1
                    _DROPPED.inc()
                    _DISCONNECTS.inc()
                    self.state = "disconnected"
                    self._cond.notify_all()
                    return False
            self._queue.append(result)
            self.delivered += 1
            self.documents += 1
            if len(self._queue) > self.peak_queue_depth:
                self.peak_queue_depth = len(self._queue)
            self._cond.notify_all()
            notify = True
        _DELIVERED.inc()
        if notify and self.on_ready is not None:
            self.on_ready(self)
        return True

    def _end(self, state: str) -> None:
        with self._cond:
            if self.state in ("finished", "disconnected", "closed"):
                return
            self.state = state
            self._cond.notify_all()
        if self.on_ready is not None:
            self.on_ready(self)

    def _watermarks(self) -> dict:
        with self._cond:
            return {
                "name": self.name,
                "state": self.state,
                "policy": self.policy,
                "delivered": self.delivered,
                "dropped": self.dropped,
                "documents": self.documents,
                "queue_depth": len(self._queue),
                "peak_queue_depth": self.peak_queue_depth,
                "resident_bytes_hwm": self.resident_hwm,
                "first_document": self.first_document,
            }


class _ClassicScan:
    """Per-document classic scan: tokenizer + decoder + dynamic fan-out."""

    __slots__ = ("_tokenizer", "_projector", "_decoder")

    def __init__(self, projector: DynamicStreamProjector):
        self._tokenizer = Tokenizer(report_document_events=False, stop_at_root_close=True)
        self._projector = projector
        self._decoder = codecs.getincrementaldecoder("utf-8")()

    def feed(self, data: bytes) -> List[List["object"]]:
        text = self._decoder.decode(data)
        if not text:
            return None
        batch = self._tokenizer.feed_batch(text)
        if not batch:
            return None
        return self._projector.split_batch(coalesce_characters(batch))

    @property
    def root_closed(self) -> bool:
        return self._tokenizer.root_closed

    def take_remainder(self) -> bytes:
        rest = self._tokenizer.take_remainder().encode("utf-8")
        pending = self._decoder.getstate()[0]
        if pending:
            rest += pending
        return rest

    def finish(self) -> List[List["object"]]:
        pending = self._decoder.getstate()[0]
        if pending:
            raise XMLWellFormednessError(
                "truncated document: incomplete UTF-8 sequence at end of input", 0
            )
        batch = self._tokenizer.close_batch()
        if not batch:
            return None
        return self._projector.split_batch(coalesce_characters(batch))


class _FastScan:
    """Per-document bytes-native scan over the dynamic flat table."""

    __slots__ = ("_scanner", "_fanout", "_stats")

    def __init__(self, fanout: DynamicFanout, stats_list: List[Optional[RunStatistics]]):
        self._scanner = ByteScanner(fanout.tags, fanout.table(), stop_at_root_close=True)
        self._fanout = fanout
        self._stats = [stats for stats in stats_list if stats is not None]

    def _split(self, batch):
        if batch.seen:
            for stats in self._stats:
                stats.record_input(batch.seen, batch.cost)
        fanout = self._fanout
        table = self._scanner.table
        return batch.materialize_split(
            fanout.width, table.keep_masks, table.chars_masks, fanout.indices_for
        )

    def feed(self, data: bytes):
        return self._split(self._scanner.feed_batch(data))

    @property
    def root_closed(self) -> bool:
        return self._scanner.root_closed

    def take_remainder(self) -> bytes:
        return self._scanner.take_remainder()

    def finish(self):
        return self._split(self._scanner.close_batch())


class _IdleScan:
    """Boundary tracking with zero subscribers: tokenize, deliver nothing."""

    __slots__ = ("_tokenizer", "_decoder")

    def __init__(self):
        self._tokenizer = Tokenizer(report_document_events=False, stop_at_root_close=True)
        self._decoder = codecs.getincrementaldecoder("utf-8")()

    def feed(self, data: bytes):
        text = self._decoder.decode(data)
        if text:
            self._tokenizer.feed_batch(text)
        return None

    @property
    def root_closed(self) -> bool:
        return self._tokenizer.root_closed

    def take_remainder(self) -> bytes:
        rest = self._tokenizer.take_remainder().encode("utf-8")
        pending = self._decoder.getstate()[0]
        if pending:
            rest += pending
        return rest

    def finish(self):
        self._tokenizer.close_batch()
        return None


def _heaviest_subscriber_page(pages):
    """Governor victim hook: evict from the subscriber holding the most."""
    return max(pages, key=lambda page: page.stats.resident_bytes_current)


class SubscriptionHub:
    """One shared stream, N independently-subscribed query executions.

    ``feed`` / ``finish`` / ``close`` must be called from a single thread
    (the engine thread); ``subscribe`` / ``unsubscribe`` and all consumer
    methods are safe from any thread.
    """

    def __init__(
        self,
        dtd: Optional[DTD] = None,
        *,
        root_element: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        governor: Optional[MemoryGovernor] = None,
    ):
        self.dtd = ensure_rooted(dtd if dtd is not None else xmark_dtd(), root_element)
        self.options = options if options is not None else DEFAULT_OPTIONS
        self._fastpath = use_fastpath(self.options.fastpath, expand_attrs=False)
        self._lock = threading.Lock()
        self._engines: Dict[str, FluxEngine] = {}
        self.fanout = DynamicFanout()
        self._by_slot: Dict[int, Subscription] = {}
        self._pending_attach: List[Subscription] = []
        self._pending_detach: List[Subscription] = []
        self._names = 0
        self._state = "open"
        # Per-document scan state (engine thread only).
        self._scan = None
        self._doc_execs: List[Optional[tuple]] = []
        self._doc_start = 0
        self._cursor = 0
        self._bytes_fed = 0
        self._chunks_fed = 0
        self._documents_completed = 0
        self._owns_governor = False
        if governor is None and self.options.memory_budget is not None:
            governor = MemoryGovernor(
                self.options.memory_budget, page_bytes=self.options.memory_page_bytes
            )
            self._owns_governor = True
        self.governor = governor
        if governor is not None:
            governor.victim_selector = _heaviest_subscriber_page
        _flight.RECORDER.note("serve-hub-open", self._fastpath)
        self._progress_key = _serve.register_run(self._progress)

    # ---------------------------------------------------------- subscriptions

    def subscribe(
        self,
        query: str,
        *,
        name: Optional[str] = None,
        policy: str = "block",
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> Subscription:
        """Register a query subscription; active from the next document on.

        The query is compiled at most once per source text (compiled
        engines are shared between subscriptions); the subscription itself
        -- seat, queue, counters -- is always private, so the same query
        text subscribed twice delivers results independently to both.
        """
        if self._state == "closed":
            raise RuntimeError("cannot subscribe on a closed hub")
        engine = self._engine_for(query)
        with self._lock:
            self._names += 1
            sub = Subscription(
                self, name or f"sub-{self._names}", query, policy, max_queue
            )
            sub._engine = engine
            self._pending_attach.append(sub)
        _SUBSCRIBES.inc()
        _flight.RECORDER.note("serve-subscribe", sub.name)
        # Between documents (or before the first) the attach applies
        # immediately, so a pre-feed subscriber never misses document zero;
        # mid-document it stays queued for the boundary.
        self._apply_pending()
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a subscription at the next document boundary.

        Results already queued stay readable; the subscription ends (its
        consumers observe ``None``) once the detach applies.  Idempotent.
        """
        announced = False
        with self._lock:
            if sub in self._pending_attach:
                self._pending_attach.remove(sub)
                sub._end("closed")
                _UNSUBSCRIBES.inc()
                return
            if sub.state not in ("active", "disconnected"):
                return
            if sub not in self._pending_detach:
                self._pending_detach.append(sub)
                announced = True
        with sub._cond:
            sub._cancelled = True
            sub._cond.notify_all()
        if announced:
            _UNSUBSCRIBES.inc()
            _flight.RECORDER.note("serve-unsubscribe", sub.name)
        self._apply_pending()

    def subscriptions(self) -> List[Subscription]:
        with self._lock:
            live = list(self._by_slot.values())
            return live + [sub for sub in self._pending_attach if sub not in live]

    def _engine_for(self, query: str) -> FluxEngine:
        with self._lock:
            engine = self._engines.get(query)
        if engine is None:
            compiled = FluxEngine(query, self.dtd, projection=True)
            with self._lock:
                engine = self._engines.setdefault(query, compiled)
        return engine

    # -------------------------------------------------------------- churn

    def _apply_pending(self) -> None:
        """Apply queued churn if no document is open; defer otherwise.

        ``self._scan`` transitions from ``None`` to a live scan only under
        the hub lock (:meth:`_begin_document`), so checking it here makes
        the boundary-only guarantee race-free for subscriber threads; the
        engine thread applies deferred churn itself at every boundary.
        """
        with self._lock:
            if self._scan is None:
                self._apply_pending_locked()

    def _apply_pending_locked(self) -> None:
        detaches = list(self._pending_detach)
        self._pending_detach = []
        # Disconnect-policy evictions mark themselves on the subscription
        # (no hub lock under the queue lock); sweep them up here.
        for sub in self._by_slot.values():
            if sub.state == "disconnected" and sub not in detaches:
                detaches.append(sub)
        attaches = self._pending_attach
        self._pending_attach = []
        for sub in detaches:
            if sub.slot_id is not None:
                self.fanout.detach(sub.slot_id)
                self._by_slot.pop(sub.slot_id, None)
            sub._end("closed" if sub.state != "disconnected" else "disconnected")
        for sub in attaches:
            spec = sub._engine.pipeline.projection_spec
            sub.slot_id = self.fanout.attach(spec)
            sub.first_document = self._documents_completed
            sub.state = "active"
            self._by_slot[sub.slot_id] = sub

    def compact(self) -> int:
        """Reclaim tombstoned seats (the one full re-merge; see fanout)."""
        with self._lock:
            if self._scan is not None:
                raise RuntimeError("compact only between documents")
            return self.fanout.compact()

    # ---------------------------------------------------------------- feed

    def feed(self, chunk: Union[bytes, bytearray, str]) -> int:
        """Consume one stream chunk; returns documents completed by it."""
        if self._state != "open":
            raise RuntimeError(f"cannot feed a {self._state} hub")
        data = chunk.encode("utf-8") if isinstance(chunk, str) else bytes(chunk)
        self._bytes_fed += len(data)
        self._chunks_fed += 1
        _CHUNKS.inc()
        completed = 0
        while data:
            if self._scan is None:
                stripped = data.lstrip(_INTERDOC_WS)
                self._cursor += len(data) - len(stripped)
                data = stripped
                if not data:
                    break
                self._begin_document()
            try:
                subs = self._scan.feed(data)
                if subs is not None:
                    self._dispatch(subs)
                if not self._scan.root_closed:
                    self._cursor += len(data)
                    break
                remainder = self._scan.take_remainder()
                boundary = self._cursor + len(data) - len(remainder)
                final = self._scan.finish()
                if final is not None:
                    self._dispatch(final)
                self._seal_document()
            except Exception:
                self._abort_document()
                self.close()
                raise
            self._cursor = boundary
            data = remainder
            completed += 1
        return completed

    def finish(self) -> None:
        """End of stream: every live subscription observes end-of-feed.

        Raises (like a push run) when the stream ends mid-document.
        """
        if self._state != "open":
            return
        if self._scan is not None:
            try:
                final = self._scan.finish()
                if final is not None:
                    self._dispatch(final)
                self._seal_document()
            except Exception:
                self._abort_document()
                self.close()
                raise
        self._state = "finished"
        self._apply_pending()
        with self._lock:
            live = list(self._by_slot.values()) + list(self._pending_attach)
        for sub in live:
            sub._end("finished")
        self._teardown()

    def close(self) -> None:
        """Abort: release buffers, end every subscription.  Idempotent."""
        if self._state == "closed":
            return
        self._abort_document()
        previous, self._state = self._state, "closed"
        with self._lock:
            live = list(self._by_slot.values()) + list(self._pending_attach)
            self._pending_attach = []
        for sub in live:
            sub._end("closed")
        if previous != "finished":
            self._teardown()

    def __enter__(self) -> "SubscriptionHub":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._state == "open":
            self.finish()
        else:
            self.close()

    # ----------------------------------------------------------- watermarks

    @property
    def documents_completed(self) -> int:
        return self._documents_completed

    @property
    def bytes_fed(self) -> int:
        return self._bytes_fed

    @property
    def active_subscriptions(self) -> int:
        with self._lock:
            return len(self._by_slot)

    def progress(self) -> dict:
        """The hub's live watermark snapshot (what ``/progress`` shows)."""
        return self._progress()

    def _progress(self) -> dict:
        with self._lock:
            subs = list(self._by_slot.values()) + list(self._pending_attach)
        return {
            "mode": "serve",
            "state": self._state,
            "fastpath": self._fastpath,
            "bytes_fed": self._bytes_fed,
            "chunks_fed": self._chunks_fed,
            "documents_completed": self._documents_completed,
            "fanout": {
                "width": self.fanout.width,
                "active": self.fanout.active_count,
                "recompiles": self.fanout.recompiles,
                "attaches": self.fanout.attaches,
                "detaches": self.fanout.detaches,
            },
            "subscriptions": [sub._watermarks() for sub in subs],
        }

    # ------------------------------------------------------------ internals

    def _begin_document(self) -> None:
        # One lock acquisition covers churn application, executor creation
        # and the scan hand-off: a subscription attached concurrently either
        # lands before the capture (it gets this document) or stays pending
        # (the ``_scan`` check in ``_apply_pending`` defers it) -- never half.
        factory = self.governor.make_buffer if self.governor is not None else None
        with self._lock:
            self._apply_pending_locked()
            self._doc_start = self._cursor
            order = self.fanout.order()
            execs: List[Optional[tuple]] = []
            stats_list: List[Optional[RunStatistics]] = []
            for slot_id in order:
                sub = self._by_slot.get(slot_id)
                if sub is None:
                    execs.append(None)
                    stats_list.append(None)
                    continue
                stats = RunStatistics()
                executor = StreamExecutor(
                    sub._engine.plan,
                    collect_output=True,
                    stats=stats,
                    count_input=False,
                    buffer_factory=factory,
                )
                executor.begin()
                execs.append((sub, executor, stats))
                stats_list.append(stats)
            self._doc_execs = execs
            if not order:
                self._scan = _IdleScan()
            elif self._fastpath:
                self._scan = _FastScan(self.fanout, stats_list)
            else:
                self._scan = _ClassicScan(DynamicStreamProjector(self.fanout, stats_list))

    def _dispatch(self, subs: List[List["object"]]) -> None:
        for entry, sub_batch in zip(self._doc_execs, subs):
            if entry is not None and sub_batch:
                entry[1].process_batch(sub_batch)

    def _seal_document(self) -> None:
        # Clear the scan state *first*: a concurrent subscribe during the
        # delivery loop below may then apply immediately, and the document
        # counter has already advanced so its ``first_document`` is exact.
        index = self._documents_completed
        self._documents_completed = index + 1
        self._scan = None
        execs, self._doc_execs = self._doc_execs, []
        sealed_at = time.perf_counter()
        for entry in execs:
            if entry is None:
                continue
            sub, executor, stats = entry
            execution = executor.finish()
            if stats.peak_resident_bytes > sub.resident_hwm:
                sub.resident_hwm = stats.peak_resident_bytes
            sub.seq += 1
            sub._deliver(
                SubscriptionResult(
                    name=sub.name,
                    document=index,
                    output=execution.output,
                    seq=sub.seq,
                    sealed_at=sealed_at,
                    stats=stats,
                )
            )
        _DOCUMENTS.inc()
        _flight.RECORDER.note("serve-doc", index)

    def _abort_document(self) -> None:
        execs, self._doc_execs = self._doc_execs, []
        self._scan = None
        for entry in execs:
            if entry is None:
                continue
            try:
                entry[1].abort()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    def _teardown(self) -> None:
        _serve.unregister_run(self._progress_key)
        if self._owns_governor and self.governor is not None:
            self.governor.close()


__all__ = [
    "DEFAULT_MAX_QUEUE",
    "POLICIES",
    "Subscription",
    "SubscriptionHub",
    "SubscriptionResult",
]
