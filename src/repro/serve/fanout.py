"""Incremental union projection: the merged filter as a *mutable* query set.

:class:`~repro.pipeline.fanout.MergedProjectionSpec` is compile-once: its
component tuples are sized at construction, so growing or shrinking the
query set means building a fresh spec and re-deriving every merged state --
fine for batch multirun, fatal for a subscription server where queries come
and go every few documents while N-1 others stream on.

:class:`DynamicFanout` keeps the same lockstep-product structure but makes
the slot set mutable with two cheap operations:

* **attach** (delta-merge): a new query appends a *slot*.  The dynamic
  intern table is discarded (component tuples grew by one), but re-deriving
  a dynamic state is pure dict work for every pre-existing query: per-query
  transitions are memoized on the queries' own interned
  :class:`~repro.pipeline.projection._State` objects (``state.trans``),
  which survive untouched.  Only the *new* query's automaton computes real
  transitions -- the delta.  The ``recompiles`` counter does not move.
* **detach** (tombstone): the slot is marked inactive and its bit is
  cleared from the membership masks of every interned dynamic state (and,
  in place, from the flat table's per-row masks).  No transition is
  recomputed, no state is discarded; the dead slot's component keeps
  riding the (memoized) lockstep product until the next :meth:`compact`.

:meth:`compact` is the only full re-merge: it drops tombstoned slots from
the component tuples and rebuilds the intern table -- the operation the
``recompiles`` counter counts, and the one a server schedules at leisure
(or never), not on the churn path.

Both run-side cursors are provided: :class:`DynamicStreamProjector` for the
classic event pipeline, and :meth:`DynamicFanout.table` /
:meth:`DynamicFanout.make_scanner` for the bytes-native fast path (the flat
table delegates to :meth:`DynamicFanout.transition`, so both paths share
one automaton).  Sub-batch position *i* always belongs to slot
``order()[i]``; tombstoned slots keep their position (and receive nothing)
until a compaction renumbers.

Mutations are only legal between documents -- exactly the boundary the
subscription hub applies churn at -- because interned dynamic states cached
in a run's cursor stack would otherwise go stale mid-document.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fastpath.dfa import FlatProjectionTable
from repro.fastpath.tags import TagTable
from repro.pipeline.projection import KEEP_ALL, ProjectionSpec
from repro.xmlstream.events import Characters, EndElement, Event, StartElement

#: Sentinel distinguishing "memo miss" from a memoized ``None`` (drop).
_MISS = object()


class _DynState:
    """One interned lockstep state over the current slot tuple.

    Shaped like :class:`~repro.pipeline.fanout._MergedState`, with one
    difference: the membership masks are intersected with the fanout's
    *active* mask, so a tombstoned slot's component can keep riding the
    product (its transitions are all memo hits) while its bit never
    reaches a sub-batch.  :meth:`refresh` re-derives the masks in place --
    that is all a detach costs per state.
    """

    __slots__ = ("components", "keep_mask", "chars_mask", "keep_indices", "chars_indices", "trans")

    def __init__(self, components: Tuple[object, ...], active_mask: int):
        self.components = components
        self.trans: dict = {}
        self.refresh(active_mask)

    def refresh(self, active_mask: int) -> None:
        keep_mask = 0
        chars_mask = 0
        for index, component in enumerate(self.components):
            if component is None or not active_mask >> index & 1:
                continue
            keep_mask |= 1 << index
            if component is KEEP_ALL:
                chars_mask |= 1 << index
        self.keep_mask = keep_mask
        self.chars_mask = chars_mask
        self.keep_indices = tuple(i for i in range(len(self.components)) if keep_mask >> i & 1)
        self.chars_indices = tuple(i for i in range(len(self.components)) if chars_mask >> i & 1)


class _Slot:
    """One subscription's seat in the lockstep product."""

    __slots__ = ("slot_id", "spec", "active")

    def __init__(self, slot_id: int, spec: Optional[ProjectionSpec]):
        self.slot_id = slot_id
        self.spec = spec
        self.active = True


class DynamicFanout:
    """A mutable union projection automaton with stable slot identities."""

    def __init__(self):
        self._slot_ids = itertools.count(1)
        self._slots: List[_Slot] = []
        self._active_mask = 0
        self._states: Dict[Tuple[object, ...], _DynState] = {}
        self._initial: Optional[_DynState] = None
        #: Engine-shared tag interning for the fast path; survives table
        #: rebuilds so interned tag ids stay valid across attaches.
        self.tags = TagTable()
        self._table: Optional[FlatProjectionTable] = None
        self._indices: Dict[int, Tuple[int, ...]] = {}
        #: Full re-merges of the union automaton (only :meth:`compact`).
        self.recompiles = 0
        self.attaches = 0
        self.detaches = 0

    # -------------------------------------------------------------- mutation

    @property
    def width(self) -> int:
        """Slots currently holding a position (tombstones included)."""
        return len(self._slots)

    @property
    def active_count(self) -> int:
        return sum(1 for slot in self._slots if slot.active)

    def order(self) -> Tuple[int, ...]:
        """Slot ids by sub-batch position (tombstones keep their seat)."""
        return tuple(slot.slot_id for slot in self._slots)

    def attach(self, spec: Optional[ProjectionSpec]) -> int:
        """Delta-merge one query into the union; returns its slot id.

        ``spec`` is the query's projection automaton (``None`` pins the
        slot to keep-everything, like a projection-disabled query).  Only
        the dynamic intern table is reset: every pre-existing query's own
        memoized transitions are reused verbatim, so the re-derivation
        work as the stream continues touches only the new query's states.
        """
        slot = _Slot(next(self._slot_ids), spec)
        self._slots.append(slot)
        self._active_mask |= 1 << (len(self._slots) - 1)
        self.attaches += 1
        self._reset_states()
        return slot.slot_id

    def detach(self, slot_id: int) -> None:
        """Tombstone one slot: clear its membership bit everywhere, in place.

        No transition is recomputed and no interned state is discarded --
        the mutation is a mask sweep over the states the stream has
        actually visited (plus the flat table's rows on the fast path).
        """
        position = self._position(slot_id)
        slot = self._slots[position]
        if not slot.active:
            raise ValueError(f"slot {slot_id} is already detached")
        slot.active = False
        self._active_mask &= ~(1 << position)
        self.detaches += 1
        active_mask = self._active_mask
        if self._initial is not None:
            self._initial.refresh(active_mask)
        for state in self._states.values():
            if state is not self._initial:
                state.refresh(active_mask)
        if self._table is not None:
            self._table.refresh_metadata()
        self._indices.clear()

    def compact(self) -> int:
        """Drop tombstoned slots and rebuild the product over the survivors.

        The one *full* re-merge -- ``recompiles`` counts it.  Sub-batch
        positions shift; callers must re-read :meth:`order`.  Returns the
        number of seats reclaimed.
        """
        reclaimed = sum(1 for slot in self._slots if not slot.active)
        if reclaimed:
            self._slots = [slot for slot in self._slots if slot.active]
        self.recompiles += 1
        self._active_mask = (1 << len(self._slots)) - 1
        self._reset_states()
        return reclaimed

    # ------------------------------------------------------------ automaton

    def _position(self, slot_id: int) -> int:
        for position, slot in enumerate(self._slots):
            if slot.slot_id == slot_id:
                return position
        raise KeyError(f"no slot {slot_id}; live slots: {self.order()}")

    def _reset_states(self) -> None:
        self._states = {}
        self._initial = None
        self._table = None
        self._indices.clear()

    @property
    def initial(self) -> _DynState:
        if self._initial is None:
            if not self._slots:
                raise ValueError("the fanout has no slots; attach a query first")
            components = tuple(
                KEEP_ALL if slot.spec is None else slot.spec.initial for slot in self._slots
            )
            self._initial = self._intern(components)
        return self._initial

    def _intern(self, components: Tuple[object, ...]) -> _DynState:
        state = self._states.get(components)
        if state is None:
            state = _DynState(components, self._active_mask)
            self._states[components] = state
        return state

    def transition(self, state: _DynState, tag: str) -> Optional[_DynState]:
        """Lockstep successor for ``tag``; ``None`` when every slot drops.

        Per-slot successors are looked up in the slot automaton's *own*
        per-state memo first (``_State.trans``), so replaying a warm
        stream after an attach never re-enters a pre-existing query's
        transition function.
        """
        slots = self._slots
        components: List[object] = []
        any_kept = False
        for index, component in enumerate(state.components):
            if component is None or component is KEEP_ALL:
                successor = component
            else:
                successor = component.trans.get(tag, _MISS)
                if successor is _MISS:
                    successor = slots[index].spec.transition(component, tag)
                    component.trans[tag] = successor
            components.append(successor)
            if successor is not None:
                any_kept = True
        if not any_kept:
            return None
        return self._intern(tuple(components))

    # ------------------------------------------------------------- fast path

    def table(self) -> FlatProjectionTable:
        """The flat transition table over the current slot tuple (lazy).

        Rebuilt from scratch only after an attach or a compaction; the
        rebuild itself is lazy (cells fill as the stream revisits states,
        through the per-query memos).  A detach patches the existing
        table's mask rows in place instead.
        """
        if self._table is None:
            self._table = FlatProjectionTable(
                self.initial,
                self.transition,
                lambda state: (bool(state.chars_mask), state.keep_mask, state.chars_mask),
                self.tags,
            )
        return self._table

    def indices_for(self, mask: int) -> Tuple[int, ...]:
        """Unpack a membership bitset into sub-batch positions (memoized)."""
        indices = self._indices.get(mask)
        if indices is None:
            indices = tuple(i for i in range(mask.bit_length()) if mask >> i & 1)
            self._indices[mask] = indices
        return indices


class DynamicStreamProjector:
    """Per-document cursor over a :class:`DynamicFanout` (classic pipeline).

    The event loop is the one from
    :class:`~repro.pipeline.fanout.MergedStreamProjector`; the only
    differences are that transitions come from the dynamic fanout and that
    ``stats_list`` may hold ``None`` entries (tombstoned seats record no
    input).  Create a fresh projector per document -- mutating the fanout
    invalidates any live cursor, which is why the hub churns only at
    document boundaries.
    """

    __slots__ = ("fanout", "stats_list", "_stack", "_skip_depth", "dropped_events")

    def __init__(self, fanout: DynamicFanout, stats_list: Optional[Sequence] = None):
        self.fanout = fanout
        stats_list = list(stats_list) if stats_list is not None else []
        if stats_list and len(stats_list) != fanout.width:
            raise ValueError("stats_list must have one entry per slot position")
        self.stats_list = [stats for stats in stats_list if stats is not None]
        self._stack: List[_DynState] = [fanout.initial]
        self._skip_depth = 0
        self.dropped_events = 0

    def split_batch(self, batch: List[Event]) -> List[List[Event]]:
        """Fan one batch out into per-seat sub-batches (some may be empty)."""
        fanout = self.fanout
        subs: List[List[Event]] = [[] for _ in range(fanout.width)]
        appends = [sub.append for sub in subs]
        transition = fanout.transition
        stack = self._stack
        push = stack.append
        pop = stack.pop
        skip = self._skip_depth
        dropped = 0
        seen = 0
        cost = 0
        for event in batch:
            cls = event.__class__
            if cls is StartElement:
                seen += 1
                cost += (
                    len(event.name) + 2 if not event.attributes else event.cost_in_bytes()
                )
                if skip:
                    skip += 1
                    dropped += 1
                    continue
                state = stack[-1]
                trans = state.trans
                name = event.name
                if name in trans:
                    target = trans[name]
                else:
                    target = transition(state, name)
                    trans[name] = target
                if target is None:
                    skip = 1
                    dropped += 1
                    continue
                push(target)
                for index in target.keep_indices:
                    appends[index](event)
                continue
            if cls is Characters:
                seen += 1
                cost += len(event.text)
                if skip:
                    dropped += 1
                    continue
                indices = stack[-1].chars_indices
                if indices:
                    for index in indices:
                        appends[index](event)
                else:
                    dropped += 1
                continue
            if cls is EndElement:
                seen += 1
                cost += len(event.name) + 3
                if skip:
                    skip -= 1
                    dropped += 1
                    continue
                state = pop()
                for index in state.keep_indices:
                    appends[index](event)
                continue
            if not skip:
                for append in appends:
                    append(event)
        self._skip_depth = skip
        self.dropped_events += dropped
        if seen:
            for stats in self.stats_list:
                stats.record_input(seen, cost)
        return subs


__all__ = ["DynamicFanout", "DynamicStreamProjector"]
