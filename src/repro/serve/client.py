"""A small blocking NDJSON client for the subscription server.

Deliberately thin: a socket, the frame splitter, and helpers for the
common operations.  The CLI's ``repro subscribe``, the examples and the
end-to-end tests all drive the server through this class, so the wire
protocol (:mod:`repro.serve.protocol`) stays the single integration
surface -- anything the client can do, ``nc`` can do.
"""

from __future__ import annotations

import socket
from typing import Iterator, Optional

from repro.serve.protocol import LineSplitter, encode


class SubscribeClient:
    """One connection to a :class:`~repro.serve.server.ServeServer`."""

    def __init__(self, host: str, port: int, *, timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._splitter = LineSplitter()
        self._frames: list = []
        self._closed = False

    # ----------------------------------------------------------------- send

    def send(self, message: dict) -> None:
        self._sock.sendall(encode(message))

    def subscribe(
        self,
        query: str,
        *,
        name: Optional[str] = None,
        policy: str = "block",
        max_queue: Optional[int] = None,
    ) -> None:
        message = {"op": "subscribe", "query": query, "policy": policy}
        if name is not None:
            message["name"] = name
        if max_queue is not None:
            message["max_queue"] = max_queue
        self.send(message)

    def unsubscribe(self, name: str) -> None:
        self.send({"op": "unsubscribe", "name": name})

    def ping(self) -> None:
        self.send({"op": "ping"})

    def request_stats(self) -> None:
        self.send({"op": "stats"})

    # -------------------------------------------------------------- receive

    def recv(self) -> Optional[dict]:
        """The next frame, or ``None`` once the server closed the stream."""
        while True:
            if self._frames:
                return self._frames.pop(0)
            if self._closed:
                return None
            data = self._sock.recv(65536)
            if not data:
                self._closed = True
                return None
            self._frames.extend(self._splitter.feed(data))

    def frames(self, *, until_eof: bool = True) -> Iterator[dict]:
        """Iterate incoming frames; stops at ``eof`` (or stream close)."""
        while True:
            frame = self.recv()
            if frame is None:
                return
            yield frame
            if until_eof and frame.get("event") == "eof":
                return

    def expect(self, event: str) -> dict:
        """Read frames until one carries ``event``; returns it.

        Frames of other types arriving first (results for an earlier
        subscription, say) are buffered back for :meth:`recv`.
        """
        skipped: list = []
        try:
            while True:
                frame = self.recv()
                if frame is None:
                    raise ConnectionError(f"stream ended while waiting for {event!r}")
                if frame.get("event") == event:
                    return frame
                if frame.get("event") == "error":
                    raise RuntimeError(f"server error: {frame.get('message')}")
                skipped.append(frame)
        finally:
            self._frames[:0] = skipped

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        try:
            self._sock.close()
        finally:
            self._closed = True

    def __enter__(self) -> "SubscribeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["SubscribeClient"]
