"""The subscription server's wire protocol: newline-delimited JSON.

One TCP connection carries any number of subscriptions.  Every message --
either direction -- is a single JSON object on one line, UTF-8 encoded,
terminated by ``\\n``.  Nothing beyond the stdlib is needed on either end;
``nc localhost PORT`` is a workable client.

Client -> server operations (``op``):

``subscribe``
    ``{"op": "subscribe", "query": "Q1" | "<xquery text>", "name"?: str,
    "policy"?: "block" | "drop" | "disconnect", "max_queue"?: int}``
    -- register a query over the live feed.  Built-in XMark query names
    (Q1, Q8, ...) are resolved server-side.  Replies ``subscribed`` with
    the assigned ``name``; results follow as they seal.
``unsubscribe``
    ``{"op": "unsubscribe", "name": str}`` -- detach at the next document
    boundary.  Replies ``unsubscribed``.
``feed``
    ``{"op": "feed", "data": str}`` -- push stream content (servers
    started with a ticker source reject this).
``finish``
    ``{"op": "finish"}`` -- end a client-fed stream.
``stats``
    ``{"op": "stats"}`` -- replies one ``stats`` message with the hub's
    progress snapshot (the same JSON ``/progress`` serves).
``ping``
    ``{"op": "ping"}`` -- replies ``pong``; liveness and ordering probe.

Server -> client events (``event``):

``subscribed`` / ``unsubscribed``
    Acknowledgements; carry ``name``.
``result``
    ``{"event": "result", "name": str, "document": int, "seq": int,
    "output": str}`` -- one subscription's result for one document.
``error``
    ``{"event": "error", "message": str}`` -- the offending operation was
    rejected; the connection stays up.
``eof``
    The feed finished; no further results will arrive on any
    subscription of this connection.
``pong`` / ``stats``
    Replies to the probes above.
"""

from __future__ import annotations

import json
from typing import Iterator, List, Optional, Tuple

#: Maximum accepted line length (a defensive bound, not a protocol limit:
#: one XMark tick's result is a few KB; 64 MB means something is wrong).
MAX_LINE_BYTES = 64 * 1024 * 1024


def encode(message: dict) -> bytes:
    """One wire frame for ``message``."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one frame; raises ``ValueError`` on anything but a JSON object."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed frame: {exc}") from None
    if not isinstance(message, dict):
        raise ValueError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


class LineSplitter:
    """Incremental frame splitter for arbitrarily-chunked byte streams."""

    def __init__(self):
        self._pending = bytearray()

    def feed(self, data: bytes) -> Iterator[dict]:
        """Yield every complete frame the chunk completes."""
        self._pending += data
        if len(self._pending) > MAX_LINE_BYTES:
            raise ValueError("frame exceeds MAX_LINE_BYTES without a newline")
        while True:
            index = self._pending.find(b"\n")
            if index < 0:
                return
            line = bytes(self._pending[:index])
            del self._pending[: index + 1]
            if line.strip():
                yield decode(line)


def error(message: str) -> dict:
    return {"event": "error", "message": message}


def result_event(name: str, document: int, seq: int, output: Optional[str]) -> dict:
    return {
        "event": "result",
        "name": name,
        "document": document,
        "seq": seq,
        "output": output,
    }


__all__ = [
    "MAX_LINE_BYTES",
    "LineSplitter",
    "decode",
    "encode",
    "error",
    "result_event",
]
