"""The subscription server: an asyncio front-end over the synchronous hub.

Threading model (two threads plus the pool asyncio keeps for itself):

* the **engine thread** owns the :class:`~repro.serve.hub.SubscriptionHub`
  and drives the shared scan -- either from a server-owned chunk source
  (the XMark ticker, a file) or from ``feed`` operations clients push;
* the **event-loop thread** accepts TCP connections, parses NDJSON
  operations (:mod:`repro.serve.protocol`) and writes result frames.

The bridge between them is each subscription's bounded queue: the engine
thread delivers into it (blocking there under the ``block`` policy -- that
is the backpressure path), the subscription's ``on_ready`` hook pokes the
connection's pump coroutine via ``call_soon_threadsafe``, and the pump
drains queues non-blockingly and ``await``-drains the socket, so a slow
TCP peer stalls its own queue, then (policy permitting) the engine -- never
the event loop.  Query compilation runs in the loop's default executor so
a burst of subscribes cannot freeze frame writing.
"""

from __future__ import annotations

import asyncio
import queue as _queue
import threading
from collections import deque
from typing import Dict, Iterable, Optional

from repro.serve.hub import DEFAULT_MAX_QUEUE, Subscription, SubscriptionHub
from repro.serve.protocol import LineSplitter, encode, error, result_event
from repro.xmark.queries import BENCHMARK_QUERIES

#: Subscription states after which no further result can be enqueued.
_ENDED = ("finished", "disconnected", "closed")

#: Engine-thread ingest sentinels (client-fed mode).
_FINISH = object()
_STOP = object()


class _Connection:
    """Per-connection state shared by the reader and the pump coroutine."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.subs: Dict[str, Subscription] = {}
        self.outbox: deque = deque()
        self.ready = asyncio.Event()
        self.eof_sent = False
        self.closed = False

    def post(self, message: dict) -> None:
        """Queue a control frame (ack, error, pong) and wake the pump."""
        self.outbox.append(message)
        self.ready.set()


class ServeServer:
    """One listening socket, one hub, any number of subscriber connections.

    ``chunks`` makes the server self-feeding (the engine thread drains the
    iterable, then finishes the feed); without it clients drive the stream
    through ``feed`` / ``finish`` operations.  ``start`` returns once the
    socket is bound (``port`` 0 picks an ephemeral port, see ``self.port``);
    ``join`` waits for the feed to end, ``stop`` tears everything down.
    """

    def __init__(
        self,
        hub: SubscriptionHub,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        chunks: Optional[Iterable[bytes]] = None,
    ):
        self.hub = hub
        self.host = host
        self.port = port
        self._chunks = chunks
        self._ingest: "_queue.Queue" = _queue.Queue()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._engine_thread: Optional[threading.Thread] = None
        self._stopping = False
        self._feed_done = threading.Event()
        self._connections: set = set()
        self.engine_error: Optional[BaseException] = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "ServeServer":
        started = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._loop_main, args=(started,), name="repro-serve-loop", daemon=True
        )
        self._loop_thread.start()
        started.wait()
        if self._server is None:
            raise RuntimeError("subscription server failed to bind")
        self._engine_thread = threading.Thread(
            target=self._engine_main, name="repro-serve-engine", daemon=True
        )
        self._engine_thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until the feed finished (or aborted); True when it did."""
        return self._feed_done.wait(timeout)

    def stop(self) -> None:
        """Stop feeding, close every connection, release the socket."""
        if self._stopping:
            return
        self._stopping = True
        self._ingest.put(_STOP)
        self.hub.close()
        if self._engine_thread is not None:
            self._engine_thread.join(timeout=10)
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------- engine thread

    def _engine_main(self) -> None:
        hub = self.hub
        try:
            if self._chunks is not None:
                for chunk in self._chunks:
                    if self._stopping:
                        break
                    hub.feed(chunk)
                if not self._stopping:
                    hub.finish()
            else:
                while not self._stopping:
                    item = self._ingest.get()
                    if item is _STOP:
                        break
                    if item is _FINISH:
                        hub.finish()
                        break
                    hub.feed(item)
        except Exception as exc:  # noqa: BLE001 - reported to clients
            self.engine_error = exc
            hub.close()
        finally:
            self._feed_done.set()
            loop = self._loop
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(self._wake_all)

    def _wake_all(self) -> None:
        for connection in list(self._connections):
            connection.ready.set()

    # ------------------------------------------------------------ event loop

    def _loop_main(self, started: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot():
            try:
                self._server = await asyncio.start_server(
                    self._handle, self.host, self.port
                )
                self.port = self._server.sockets[0].getsockname()[1]
            finally:
                started.set()

        loop.run_until_complete(boot())
        if self._server is not None:
            loop.run_forever()
        loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in list(self._connections):
            connection.closed = True
            connection.ready.set()
            try:
                connection.writer.close()
            except Exception:  # noqa: BLE001 - socket may be gone already
                pass
        # Closed writers surface EOF to every handler's read loop; give them
        # a moment to unwind on their own, then cancel the stragglers so the
        # loop stops clean.
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)
        tasks = [task for task in asyncio.all_tasks() if task is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------ connections

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        pump = asyncio.ensure_future(self._pump(connection))
        splitter = LineSplitter()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    for message in splitter.feed(data):
                        await self._apply(connection, message)
                except ValueError as exc:
                    connection.post(error(str(exc)))
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            connection.closed = True
            for sub in list(connection.subs.values()):
                self.hub.unsubscribe(sub)
            connection.subs.clear()
            connection.ready.set()
            try:
                await asyncio.wait_for(pump, timeout=10)
            except BaseException:  # noqa: BLE001 - includes late cancellation
                pump.cancel()
            self._connections.discard(connection)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - socket may be gone already
                pass

    async def _apply(self, connection: _Connection, message: dict) -> None:
        op = message.get("op")
        if op == "ping":
            connection.post({"event": "pong"})
        elif op == "stats":
            connection.post({"event": "stats", "progress": self.hub.progress()})
        elif op == "subscribe":
            await self._op_subscribe(connection, message)
        elif op == "unsubscribe":
            name = message.get("name")
            sub = connection.subs.get(name)
            if sub is None:
                connection.post(error(f"no subscription named {name!r}"))
                return
            self.hub.unsubscribe(sub)
            connection.post({"event": "unsubscribed", "name": name})
        elif op == "feed":
            if self._chunks is not None:
                connection.post(error("this server feeds itself; 'feed' is not accepted"))
                return
            data = message.get("data")
            if not isinstance(data, str):
                connection.post(error("'feed' needs a string 'data' field"))
                return
            self._ingest.put(data.encode("utf-8"))
        elif op == "finish":
            if self._chunks is not None:
                connection.post(error("this server feeds itself; 'finish' is not accepted"))
                return
            self._ingest.put(_FINISH)
        else:
            connection.post(error(f"unknown op {message.get('op')!r}"))

    async def _op_subscribe(self, connection: _Connection, message: dict) -> None:
        query = message.get("query")
        if not isinstance(query, str) or not query.strip():
            connection.post(error("'subscribe' needs a non-empty 'query' field"))
            return
        query = BENCHMARK_QUERIES.get(query, query)
        name = message.get("name")
        policy = message.get("policy", "block")
        max_queue = message.get("max_queue", DEFAULT_MAX_QUEUE)
        loop = asyncio.get_event_loop()
        try:
            # Compilation can take tens of milliseconds; keep the loop free.
            sub = await loop.run_in_executor(
                None,
                lambda: self.hub.subscribe(
                    query, name=name, policy=policy, max_queue=int(max_queue)
                ),
            )
        except Exception as exc:  # noqa: BLE001 - compile/validation errors
            connection.post(error(f"subscribe failed: {exc}"))
            return
        if sub.name in connection.subs:
            self.hub.unsubscribe(sub)
            connection.post(error(f"subscription name {sub.name!r} already in use"))
            return
        sub.on_ready = self._make_waker(connection)
        connection.subs[sub.name] = sub
        connection.post({"event": "subscribed", "name": sub.name, "query": sub.query})

    def _make_waker(self, connection: _Connection):
        loop = self._loop

        def wake(_sub: Subscription) -> None:
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(connection.ready.set)

        return wake

    async def _pump(self, connection: _Connection) -> None:
        """Drain control frames and subscription queues onto the socket."""
        writer = connection.writer
        try:
            while True:
                await connection.ready.wait()
                connection.ready.clear()
                while True:
                    wrote = False
                    while connection.outbox:
                        writer.write(encode(connection.outbox.popleft()))
                        wrote = True
                    for name, sub in list(connection.subs.items()):
                        drained = 0
                        while drained < 32:
                            item = sub.get_nowait()
                            if item is None:
                                break
                            writer.write(
                                encode(
                                    result_event(
                                        item.name, item.document, item.seq, item.output
                                    )
                                )
                            )
                            drained += 1
                        if drained:
                            wrote = True
                            # The socket's flow control is the second half of
                            # the backpressure chain: stop popping while the
                            # peer is slow, so the bounded queue (and then
                            # the engine, under ``block``) feels it.
                            await writer.drain()
                        if sub.state in _ENDED and sub.queue_depth == 0:
                            connection.subs.pop(name, None)
                    if not wrote:
                        break
                    await writer.drain()
                if connection.closed:
                    return
                if (
                    self._feed_done.is_set()
                    and not connection.eof_sent
                    and not connection.outbox
                    and all(sub.queue_depth == 0 for sub in connection.subs.values())
                ):
                    connection.eof_sent = True
                    if self.engine_error is not None:
                        writer.write(encode(error(f"feed aborted: {self.engine_error}")))
                    writer.write(encode({"event": "eof"}))
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            return


def serve_ticker(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    documents: Optional[int] = None,
    seed: int = 42,
    scale: Optional[float] = None,
    chunk_size: int = 8192,
    hub: Optional[SubscriptionHub] = None,
) -> ServeServer:
    """A started server self-feeding the XMark auction ticker."""
    from repro.xmark.ticker import DEFAULT_TICK_SCALE, iter_ticker_chunks

    chunks = iter_ticker_chunks(
        documents=documents,
        seed=seed,
        scale=DEFAULT_TICK_SCALE if scale is None else scale,
        chunk_size=chunk_size,
    )
    server = ServeServer(
        hub if hub is not None else SubscriptionHub(),
        host=host,
        port=port,
        chunks=chunks,
    )
    return server.start()


__all__ = ["ServeServer", "serve_ticker"]
