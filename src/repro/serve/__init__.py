"""repro.serve: the streaming subscription server.

The pub/sub composition of everything the engine already does one piece at
a time: clients register prepared queries as **subscriptions** over a live
document feed; every stream chunk flows through one shared
tokenize -> coalesce -> project pass however many subscriptions are live;
per-subscription results stream back through bounded queues with explicit
slow-consumer policies.  The query set is *mutable mid-stream*: the union
projection automaton grows by delta-merge and shrinks by tombstoning
(:mod:`repro.serve.fanout`), so churn never recompiles the surviving
queries and never perturbs in-flight documents.

Layers, bottom up:

* :mod:`repro.serve.fanout` -- the incremental union automaton,
* :mod:`repro.serve.hub` -- the synchronous engine core: subscriptions,
  boundary churn, bounded delivery, governor fairness,
* :mod:`repro.serve.protocol` -- the NDJSON wire format,
* :mod:`repro.serve.server` / :mod:`repro.serve.client` -- the asyncio
  TCP front-end and its blocking client (``repro serve`` /
  ``repro subscribe``).
"""

from repro.serve.fanout import DynamicFanout, DynamicStreamProjector
from repro.serve.hub import (
    DEFAULT_MAX_QUEUE,
    POLICIES,
    Subscription,
    SubscriptionHub,
    SubscriptionResult,
)
from repro.serve.client import SubscribeClient
from repro.serve.server import ServeServer, serve_ticker

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "DynamicFanout",
    "DynamicStreamProjector",
    "POLICIES",
    "ServeServer",
    "SubscribeClient",
    "Subscription",
    "SubscriptionHub",
    "SubscriptionResult",
    "serve_ticker",
]
