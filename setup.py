"""Legacy setup shim.

The environment has setuptools but no ``wheel`` package, so editable installs
go through ``setup.py develop`` (``pip install -e . --no-use-pep517``).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
